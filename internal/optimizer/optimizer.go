// Package optimizer defines the interfaces shared by the query planners and
// the tree-manipulation utilities (random plan generation and the
// associativity/exchange mutations of Steinbrunn et al.) used by the
// randomized planner.
//
// The key abstraction is OperatorCoster: the per-operator costing hook that
// both planners call while enumerating candidate sub-plans. This is exactly
// the paper's integration point — "we extended the getPlanCost method of our
// cost model to first perform the resource planning ... and then return the
// sub-plan cost" — so plugging resource planning into either planner means
// swapping the coster, not the planner.
package optimizer

import (
	"fmt"
	"math/rand"

	"raqo/internal/catalog"
	"raqo/internal/plan"
	"raqo/internal/units"
)

// OpCost is the multi-objective cost of one join operator at the resources
// the coster chose for it.
type OpCost struct {
	Seconds float64
	Money   units.Dollars
}

// Add accumulates another operator's cost.
func (c OpCost) Add(o OpCost) OpCost {
	return OpCost{Seconds: c.Seconds + o.Seconds, Money: c.Money + o.Money}
}

// OperatorCoster prices a single join operator. Implementations may
// annotate the operator's Res field with the resource configuration they
// chose (the RAQO coster does; the plain QO coster uses a fixed
// configuration).
type OperatorCoster interface {
	CostOperator(j *plan.Node) (OpCost, error)
}

// PlanCost prices a whole plan by summing its join operators, invoking the
// coster bottom-up (so resource annotations are in place before parents are
// priced). The walk is a direct recursion threading one accumulator in the
// same post-order Joins reports — the identical floating-point summation
// order as the historical Joins()-slice fold, without the slice allocation.
func PlanCost(c OperatorCoster, root *plan.Node) (OpCost, error) {
	return planCost(c, root, OpCost{})
}

func planCost(c OperatorCoster, n *plan.Node, acc OpCost) (OpCost, error) {
	if n == nil || n.IsScan() {
		return acc, nil
	}
	acc, err := planCost(c, n.Left, acc)
	if err != nil {
		return OpCost{}, err
	}
	acc, err = planCost(c, n.Right, acc)
	if err != nil {
		return OpCost{}, err
	}
	oc, err := c.CostOperator(n)
	if err != nil {
		return OpCost{}, err
	}
	return acc.Add(oc), nil
}

// Result is the outcome of query planning.
type Result struct {
	Plan *plan.Node
	Cost OpCost
	// PlansConsidered counts the candidate (sub-)plans the planner priced.
	PlansConsidered int
}

// Planner is a query planner: given a logical query, produce a physical
// plan with per-operator resource annotations (left to the coster).
type Planner interface {
	Plan(q *plan.Query) (*Result, error)
}

// TreeScratch holds the reusable buffers of the random-tree and mutation
// paths: the component worklist, the joinable-pair list and the join-node
// list the mutation target is drawn from. A zero TreeScratch is ready to
// use; it grows to the working-set size once and is then allocation-free
// across calls. Not safe for concurrent use — the randomized planner keeps
// one per restart worker.
type TreeScratch struct {
	comps []*plan.Node
	pairs [][2]int
	joins []*plan.Node
}

// RandomTree builds a uniformly random bushy join tree for the query: it
// repeatedly joins two random joinable connected components with a random
// operator implementation. Used to seed the randomized planner.
func RandomTree(rng *rand.Rand, q *plan.Query) (*plan.Node, error) {
	var ts TreeScratch
	return ts.RandomTree(rng, q)
}

// RandomTree is the buffer-reusing form of the package-level RandomTree.
func (ts *TreeScratch) RandomTree(rng *rand.Rand, q *plan.Query) (*plan.Node, error) {
	comps := ts.comps[:0]
	for _, r := range q.Rels {
		leaf, err := plan.NewScan(q.Schema, r)
		if err != nil {
			return nil, err
		}
		comps = append(comps, leaf)
	}
	for len(comps) > 1 {
		// Collect joinable component pairs.
		pairs := ts.pairs[:0]
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				if componentsJoinable(q.Schema, comps[i], comps[j]) {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		ts.pairs = pairs
		if len(pairs) == 0 {
			ts.comps = comps[:0]
			return nil, fmt.Errorf("optimizer: query relations not connected")
		}
		p := pairs[rng.Intn(len(pairs))]
		algo := plan.Algos[rng.Intn(len(plan.Algos))]
		joined, err := plan.NewJoin(q.Schema, algo, comps[p[0]], comps[p[1]])
		if err != nil {
			ts.comps = comps[:0]
			return nil, err
		}
		// Replace a, remove b.
		comps[p[0]] = joined
		comps[p[1]] = comps[len(comps)-1]
		comps = comps[:len(comps)-1]
	}
	root := comps[0]
	// Keep the grown buffer but drop the node reference.
	comps[0] = nil
	ts.comps = comps[:0]
	return root, nil
}

func componentsJoinable(s *catalog.Schema, a, b *plan.Node) bool {
	return plan.Joinable(s, a, b)
}

// Mutation is a local plan transformation used by randomized search.
type Mutation int

// Mutations: the exchange and associativity rules of Steinbrunn et al.,
// plus flipping the operator implementation (needed because RAQO's search
// space includes physical operator choice).
const (
	Exchange Mutation = iota // commute the children of a join
	AssocLeft
	AssocRight
	FlipAlgo
)

// Mutations lists all mutation kinds.
var Mutations = []Mutation{Exchange, AssocLeft, AssocRight, FlipAlgo}

// Mutate applies a random mutation at a random join node, returning the new
// tree. ok is false when the chosen mutation is inapplicable at the chosen
// node (the caller simply retries); the input tree is never modified.
func Mutate(rng *rand.Rand, s *catalog.Schema, root *plan.Node) (*plan.Node, bool) {
	var ts TreeScratch
	return ts.Mutate(rng, s, root)
}

// Mutate is the buffer-reusing form of the package-level Mutate.
func (ts *TreeScratch) Mutate(rng *rand.Rand, s *catalog.Schema, root *plan.Node) (*plan.Node, bool) {
	joins := root.AppendJoins(ts.joins[:0])
	ts.joins = joins
	if len(joins) == 0 {
		return nil, false
	}
	target := joins[rng.Intn(len(joins))]
	m := Mutations[rng.Intn(len(Mutations))]
	out, err := rebuild(s, root, target, m)
	if err != nil || out == nil {
		return nil, false
	}
	return out, true
}

// rebuild copies root, replacing target with its transformed version; nodes
// off the path to target are shared (they are immutable apart from Res,
// which planners reassign anyway).
func rebuild(s *catalog.Schema, n, target *plan.Node, m Mutation) (*plan.Node, error) {
	if n == target {
		return transform(s, n, m)
	}
	if n.IsScan() {
		return n, nil
	}
	left, err := rebuild(s, n.Left, target, m)
	if err != nil || left == nil {
		return left, err
	}
	right, err := rebuild(s, n.Right, target, m)
	if err != nil || right == nil {
		return right, err
	}
	if left == n.Left && right == n.Right {
		return n, nil
	}
	return plan.NewJoin(s, n.Algo, left, right)
}

// transform applies the mutation at node j; returns (nil, nil) when
// inapplicable.
func transform(s *catalog.Schema, j *plan.Node, m Mutation) (*plan.Node, error) {
	switch m {
	case Exchange:
		return plan.NewJoin(s, j.Algo, j.Right, j.Left)
	case FlipAlgo:
		other := plan.SMJ
		if j.Algo == plan.SMJ {
			other = plan.BHJ
		}
		return plan.NewJoin(s, other, j.Left, j.Right)
	case AssocLeft:
		// (A ⋈ B) ⋈ C  ->  A ⋈ (B ⋈ C)
		if j.Left.IsScan() {
			return nil, nil
		}
		a, b, c := j.Left.Left, j.Left.Right, j.Right
		bc, err := plan.NewJoin(s, j.Left.Algo, b, c)
		if err != nil {
			return nil, nil // B-C not joinable: inapplicable, not an error
		}
		return plan.NewJoin(s, j.Algo, a, bc)
	case AssocRight:
		// A ⋈ (B ⋈ C)  ->  (A ⋈ B) ⋈ C
		if j.Right.IsScan() {
			return nil, nil
		}
		a, b, c := j.Left, j.Right.Left, j.Right.Right
		ab, err := plan.NewJoin(s, j.Right.Algo, a, b)
		if err != nil {
			return nil, nil
		}
		return plan.NewJoin(s, j.Algo, ab, c)
	}
	return nil, fmt.Errorf("optimizer: unknown mutation %d", int(m))
}
