package optimizer_test

import (
	"math/rand"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/optimizer"
	"raqo/internal/optimizer/optimizertest"
	"raqo/internal/plan"
)

func q3(t *testing.T) *plan.Query {
	t.Helper()
	s := catalog.TPCH(10)
	q, err := plan.NewQuery(s, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func qAll(t *testing.T) *plan.Query {
	t.Helper()
	s := catalog.TPCH(10)
	q, err := plan.NewQuery(s, s.Tables()...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := qAll(t)
	for i := 0; i < 50; i++ {
		tree, err := optimizer.RandomTree(rng, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(q); err != nil {
			t.Fatalf("iteration %d: invalid tree: %v\n%s", i, err, tree)
		}
	}
}

func TestRandomTreeDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := qAll(t)
	sigs := map[string]bool{}
	for i := 0; i < 30; i++ {
		tree, err := optimizer.RandomTree(rng, q)
		if err != nil {
			t.Fatal(err)
		}
		sigs[tree.Signature()] = true
	}
	if len(sigs) < 10 {
		t.Errorf("only %d distinct trees in 30 draws", len(sigs))
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := qAll(t)
	tree, err := optimizer.RandomTree(rng, q)
	if err != nil {
		t.Fatal(err)
	}
	mutated, changed := 0, 0
	for i := 0; i < 300; i++ {
		mut, ok := optimizer.Mutate(rng, q.Schema, tree)
		if !ok {
			continue
		}
		mutated++
		if err := mut.Validate(q); err != nil {
			t.Fatalf("invalid mutant: %v\n%s", err, mut)
		}
		if mut.Signature() != tree.Signature() {
			changed++
		}
		// The original is untouched.
		if err := tree.Validate(q); err != nil {
			t.Fatalf("mutation corrupted original: %v", err)
		}
		tree = mut // random walk
	}
	if mutated < 100 {
		t.Errorf("only %d/300 mutations applied", mutated)
	}
	if changed < 50 {
		t.Errorf("only %d mutations changed the plan", changed)
	}
}

func TestMutateReachesOtherAlgos(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := q3(t)
	tree, err := plan.LeftDeep(q.Schema, plan.SMJ, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	sawBHJ := false
	for i := 0; i < 200 && !sawBHJ; i++ {
		mut, ok := optimizer.Mutate(rng, q.Schema, tree)
		if !ok {
			continue
		}
		for _, j := range mut.Joins() {
			if j.Algo == plan.BHJ {
				sawBHJ = true
			}
		}
		tree = mut
	}
	if !sawBHJ {
		t.Error("mutations never flipped the join algorithm")
	}
}

func TestMutateScanOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := catalog.TPCH(1)
	scan, err := plan.NewScan(s, catalog.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := optimizer.Mutate(rng, s, scan); ok {
		t.Error("mutating a scan should be inapplicable")
	}
}

func TestPlanCostSums(t *testing.T) {
	q := q3(t)
	tree, err := plan.LeftDeep(q.Schema, plan.SMJ, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	c := &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}}
	oc, err := optimizer.PlanCost(c, tree)
	if err != nil {
		t.Fatal(err)
	}
	if c.Calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", c.Calls.Load())
	}
	if oc.Seconds <= 0 || oc.Money <= 0 {
		t.Errorf("cost = %+v", oc)
	}
	// Every join got annotated.
	for _, j := range tree.Joins() {
		if j.Res.IsZero() {
			t.Error("join left unannotated")
		}
	}
	// Error propagation.
	if _, err := optimizer.PlanCost(optimizertest.FailingCoster{}, tree); err == nil {
		t.Error("failing coster not propagated")
	}
}

func TestOpCostAdd(t *testing.T) {
	a := optimizer.OpCost{Seconds: 1, Money: 2}
	b := optimizer.OpCost{Seconds: 3, Money: 4}
	got := a.Add(b)
	if got.Seconds != 4 || got.Money != 6 {
		t.Errorf("Add = %+v", got)
	}
}
