// Package optimizertest provides simple OperatorCoster implementations for
// exercising the query planners in tests without pulling in the full RAQO
// resource-planning stack.
package optimizertest

import (
	"errors"
	"sync/atomic"

	"raqo/internal/optimizer"
	"raqo/internal/plan"
	"raqo/internal/units"
)

// SizeCoster prices a join by its input and output sizes (a C_out-style
// cost), annotating every operator with a fixed resource configuration. It
// is deterministic, safe for concurrent use, and makes join order matter,
// which is what planner tests need.
type SizeCoster struct {
	Res   plan.Resources
	Calls atomic.Int64
}

// CostOperator implements optimizer.OperatorCoster.
func (c *SizeCoster) CostOperator(j *plan.Node) (optimizer.OpCost, error) {
	c.Calls.Add(1)
	j.Res = c.Res
	secs := j.SmallerInputGB() + j.LargerInputGB() + j.OutputGB()
	return optimizer.OpCost{
		Seconds: secs,
		Money:   units.Dollars(secs * c.Res.TotalGB() * 1e-5),
	}, nil
}

// ErrCost is returned by FailingCoster.
var ErrCost = errors.New("optimizertest: costing failed")

// FailingCoster always errors, for planner error paths.
type FailingCoster struct{}

// CostOperator implements optimizer.OperatorCoster.
func (FailingCoster) CostOperator(*plan.Node) (optimizer.OpCost, error) {
	return optimizer.OpCost{}, ErrCost
}
