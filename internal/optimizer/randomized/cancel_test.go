package randomized

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/optimizer"
	"raqo/internal/optimizer/optimizertest"
	"raqo/internal/plan"
)

type cancellingCoster struct {
	inner  *optimizertest.SizeCoster
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (c *cancellingCoster) CostOperator(j *plan.Node) (optimizer.OpCost, error) {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.CostOperator(j)
}

func TestPlanParetoCancelledBeforeStart(t *testing.T) {
	s := catalog.TPCH(1)
	q, err := plan.NewQuery(s, s.Tables()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}}
	p := &Planner{Coster: inner, Ctx: ctx}
	if _, _, err := p.PlanPareto(q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := inner.Calls.Load(); n != 0 {
		t.Errorf("coster called %d times under a pre-cancelled context", n)
	}
}

func TestPlanParetoObservesCancellationMidSearch(t *testing.T) {
	s := catalog.TPCH(1)
	q, err := plan.NewQuery(s, s.Tables()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, restarts := range []int{1, 4} {
		inner := &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}}
		base := &Planner{Coster: inner, Opts: Options{Restarts: restarts}, Workers: restarts}
		if _, _, err := base.PlanPareto(q); err != nil {
			t.Fatal(err)
		}
		full := inner.Calls.Load()

		ctx, cancel := context.WithCancel(context.Background())
		cc := &cancellingCoster{
			inner:  &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}},
			cancel: cancel,
			after:  full / 10,
		}
		p := &Planner{Coster: cc, Opts: Options{Restarts: restarts}, Workers: restarts, Ctx: ctx}
		_, _, err := p.PlanPareto(q)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("restarts=%d: err = %v, want context.Canceled", restarts, err)
		}
		if got := cc.calls.Load(); got >= full/2 {
			t.Errorf("restarts=%d: %d costing calls after cancellation (full search = %d)", restarts, got, full)
		}
	}
}
