// Package randomized implements a fast randomized multi-objective query
// planner in the style of Trummer and Koch (SIGMOD 2016): randomized local
// search over bushy join trees using the associativity and exchange
// mutations of Steinbrunn et al., maintaining an archive of plans that are
// Pareto-optimal within a target approximation precision over (execution
// time, monetary cost).
package randomized

import (
	"fmt"
	"math/rand"

	"raqo/internal/cost"
	"raqo/internal/optimizer"
	"raqo/internal/plan"
)

// Options configures the planner. Zero values select the paper's defaults.
type Options struct {
	// Iterations is the number of improvement rounds; the paper "ran all
	// query planning for a default of 10 iterations".
	Iterations int
	// Seeds is the number of random initial plans.
	Seeds int
	// Epsilon is the target approximation precision of the Pareto archive:
	// a candidate is discarded if an archived plan (1+Epsilon)-dominates it.
	Epsilon float64
	// MutationsPerPlan bounds mutation retries per archived plan per round.
	MutationsPerPlan int
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.Seeds <= 0 {
		o.Seeds = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.MutationsPerPlan <= 0 {
		o.MutationsPerPlan = 4
	}
	return o
}

// Planner is the fast randomized multi-objective planner.
type Planner struct {
	Coster optimizer.OperatorCoster
	Opts   Options
	// RNG is the source of randomness; required for reproducible planning.
	RNG *rand.Rand
}

// ParetoEntry is one archived plan with its cost vector.
type ParetoEntry struct {
	Plan *plan.Node
	Cost optimizer.OpCost
}

func vec(c optimizer.OpCost) cost.Vector { return cost.Vector{Time: c.Seconds, Money: c.Money} }

// PlanPareto runs the randomized search and returns the approximate Pareto
// archive plus the number of candidate plans priced.
func (p *Planner) PlanPareto(q *plan.Query) ([]ParetoEntry, int, error) {
	if p.Coster == nil {
		return nil, 0, fmt.Errorf("randomized: nil coster")
	}
	if p.RNG == nil {
		return nil, 0, fmt.Errorf("randomized: nil RNG")
	}
	opts := p.Opts.withDefaults()

	var archive []ParetoEntry
	considered := 0
	insert := func(n *plan.Node) error {
		oc, err := optimizer.PlanCost(p.Coster, n)
		if err != nil {
			return nil // infeasible candidate (e.g. OOM everywhere): skip
		}
		considered++
		cv := vec(oc)
		for _, e := range archive {
			if vec(e.Cost).DominatesApprox(cv, opts.Epsilon) {
				return nil
			}
		}
		kept := archive[:0]
		for _, e := range archive {
			if !cv.Dominates(vec(e.Cost)) {
				kept = append(kept, e)
			}
		}
		archive = append(kept, ParetoEntry{Plan: n, Cost: oc})
		return nil
	}

	for i := 0; i < opts.Seeds; i++ {
		t, err := optimizer.RandomTree(p.RNG, q)
		if err != nil {
			return nil, 0, err
		}
		if err := insert(t); err != nil {
			return nil, 0, err
		}
	}
	if len(archive) == 0 {
		return nil, considered, fmt.Errorf("randomized: no feasible seed plan for %v", q.Rels)
	}

	for it := 0; it < opts.Iterations; it++ {
		snapshot := append([]ParetoEntry(nil), archive...)
		for _, e := range snapshot {
			for m := 0; m < opts.MutationsPerPlan; m++ {
				mut, ok := optimizer.Mutate(p.RNG, q.Schema, e.Plan)
				if !ok {
					continue
				}
				if err := insert(mut); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	return archive, considered, nil
}

// Plan returns the archived plan with the lowest execution time — the
// single-objective view used when comparing against Selinger.
func (p *Planner) Plan(q *plan.Query) (*optimizer.Result, error) {
	archive, considered, err := p.PlanPareto(q)
	if err != nil {
		return nil, err
	}
	best := archive[0]
	for _, e := range archive[1:] {
		if e.Cost.Seconds < best.Cost.Seconds {
			best = e
		}
	}
	// Re-cost the winner so its operators carry their final resource
	// annotations (mutated subtrees are rebuilt without Res).
	if _, err := optimizer.PlanCost(p.Coster, best.Plan); err != nil {
		return nil, err
	}
	return &optimizer.Result{Plan: best.Plan, Cost: best.Cost, PlansConsidered: considered}, nil
}
