// Package randomized implements a fast randomized multi-objective query
// planner in the style of Trummer and Koch (SIGMOD 2016): randomized local
// search over bushy join trees using the associativity and exchange
// mutations of Steinbrunn et al., maintaining an archive of plans that are
// Pareto-optimal within a target approximation precision over (execution
// time, monetary cost).
//
// The search restarts independently Options.Restarts times; restarts are
// seeded deterministically from Planner.Seed and can run concurrently
// (Planner.Workers). Archives merge in restart order under the same
// (1+ε)-dominance rule, so a multi-restart run is reproducible regardless
// of how many workers execute it.
package randomized

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"raqo/internal/cost"
	"raqo/internal/optimizer"
	"raqo/internal/plan"
)

// Options configures the planner. Zero values select the paper's defaults.
type Options struct {
	// Iterations is the number of improvement rounds; the paper "ran all
	// query planning for a default of 10 iterations".
	Iterations int
	// Seeds is the number of random initial plans.
	Seeds int
	// Epsilon is the target approximation precision of the Pareto archive:
	// a candidate is discarded if an archived plan (1+Epsilon)-dominates it.
	Epsilon float64
	// MutationsPerPlan bounds mutation retries per archived plan per round.
	MutationsPerPlan int
	// Restarts is the number of independent searches to run; their archives
	// are merged. Defaults to 1 (the paper's single-search configuration).
	Restarts int
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.Seeds <= 0 {
		o.Seeds = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.MutationsPerPlan <= 0 {
		o.MutationsPerPlan = 4
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// Planner is the fast randomized multi-objective planner.
type Planner struct {
	Coster optimizer.OperatorCoster
	Opts   Options

	// RNG, when set, drives a single-restart search exactly as in earlier
	// versions (bit-identical plans for a given source). It cannot be shared
	// across concurrent restarts, so with Opts.Restarts > 1 it is ignored
	// and Seed is used instead.
	RNG *rand.Rand

	// Seed derives each restart's private RNG when RNG is nil. The zero
	// value is a valid seed.
	Seed int64

	// Workers bounds how many restarts run concurrently: 0 or 1 is
	// sequential; negative selects runtime.NumCPU(). With Workers > 1 the
	// Coster must be safe for concurrent use.
	Workers int

	// Ctx, when non-nil, is observed between search steps (per seed plan
	// and per mutation batch): once it is cancelled the search stops and
	// returns ctx.Err() promptly. nil searches to completion.
	Ctx context.Context
}

// ParetoEntry is one archived plan with its cost vector.
type ParetoEntry struct {
	Plan *plan.Node
	Cost optimizer.OpCost
}

func vec(c optimizer.OpCost) cost.Vector { return cost.Vector{Time: c.Seconds, Money: c.Money} }

// addEntry inserts e into the (1+eps)-Pareto archive: dropped if an
// archived entry approximately dominates it, and evicting archived entries
// it strictly dominates. Returns the updated archive.
func addEntry(archive []ParetoEntry, e ParetoEntry, eps float64) []ParetoEntry {
	cv := vec(e.Cost)
	for _, a := range archive {
		if vec(a.Cost).DominatesApprox(cv, eps) {
			return archive
		}
	}
	kept := archive[:0]
	for _, a := range archive {
		if !cv.Dominates(vec(a.Cost)) {
			kept = append(kept, a)
		}
	}
	return append(kept, e)
}

// restartSeed mixes the base seed with the restart index (splitmix64-style)
// so restarts explore independent trajectories but stay reproducible.
func restartSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// searchOnce runs one seeded local search — the original single-RNG
// algorithm — and returns its archive and the number of candidates priced.
// ctx is observed per seed plan and per archived-plan mutation batch. The
// random-tree and mutation buffers live in one TreeScratch per search, and
// the per-iteration archive snapshot reuses a single growing buffer, so
// the inner loop's slice traffic is amortized away.
func (p *Planner) searchOnce(ctx context.Context, rng *rand.Rand, q *plan.Query, opts Options) ([]ParetoEntry, int, error) {
	var archive []ParetoEntry
	var ts optimizer.TreeScratch
	var snapshot []ParetoEntry
	considered := 0
	insert := func(n *plan.Node) {
		oc, err := optimizer.PlanCost(p.Coster, n)
		if err != nil {
			return // infeasible candidate (e.g. OOM everywhere): skip
		}
		considered++
		archive = addEntry(archive, ParetoEntry{Plan: n, Cost: oc}, opts.Epsilon)
	}

	for i := 0; i < opts.Seeds; i++ {
		if err := ctx.Err(); err != nil {
			return nil, considered, fmt.Errorf("randomized: search cancelled: %w", err)
		}
		t, err := ts.RandomTree(rng, q)
		if err != nil {
			return nil, considered, err
		}
		insert(t)
	}
	if len(archive) == 0 {
		return nil, considered, fmt.Errorf("randomized: no feasible seed plan for %v", q.Rels)
	}

	for it := 0; it < opts.Iterations; it++ {
		snapshot = append(snapshot[:0], archive...)
		for _, e := range snapshot {
			if err := ctx.Err(); err != nil {
				return nil, considered, fmt.Errorf("randomized: search cancelled: %w", err)
			}
			for m := 0; m < opts.MutationsPerPlan; m++ {
				mut, ok := ts.Mutate(rng, q.Schema, e.Plan)
				if !ok {
					continue
				}
				insert(mut)
			}
		}
	}
	return archive, considered, nil
}

func (p *Planner) workers(restarts int) int {
	w := p.Workers
	if w < 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	if w > restarts {
		w = restarts
	}
	return w
}

// PlanPareto runs the randomized search and returns the approximate Pareto
// archive plus the number of candidate plans priced.
func (p *Planner) PlanPareto(q *plan.Query) ([]ParetoEntry, int, error) {
	if p.Coster == nil {
		return nil, 0, fmt.Errorf("randomized: nil coster")
	}
	opts := p.Opts.withDefaults()
	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	if opts.Restarts == 1 {
		rng := p.RNG
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed))
		}
		return p.searchOnce(ctx, rng, q, opts)
	}

	type restartResult struct {
		archive    []ParetoEntry
		considered int
		err        error
	}
	results := make([]restartResult, opts.Restarts)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers(opts.Restarts); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Restarts {
					return
				}
				rng := rand.New(rand.NewSource(restartSeed(p.Seed, i)))
				a, n, err := p.searchOnce(ctx, rng, q, opts)
				results[i] = restartResult{archive: a, considered: n, err: err}
			}
		}()
	}
	wg.Wait()

	// Deterministic merge: archives fold together in restart order under
	// the same ε-dominance rule, without re-costing. Errors surface by
	// lowest restart index so failures are reproducible too.
	var merged []ParetoEntry
	considered := 0
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, 0, fmt.Errorf("restart %d: %w", i, err)
		}
		considered += results[i].considered
		for _, e := range results[i].archive {
			merged = addEntry(merged, e, opts.Epsilon)
		}
	}
	return merged, considered, nil
}

// Plan returns the archived plan with the lowest execution time — the
// single-objective view used when comparing against Selinger.
func (p *Planner) Plan(q *plan.Query) (*optimizer.Result, error) {
	archive, considered, err := p.PlanPareto(q)
	if err != nil {
		return nil, err
	}
	best := archive[0]
	for _, e := range archive[1:] {
		if e.Cost.Seconds < best.Cost.Seconds {
			best = e
		}
	}
	// Re-cost the winner so its operators carry their final resource
	// annotations (mutated subtrees are rebuilt without Res).
	if _, err := optimizer.PlanCost(p.Coster, best.Plan); err != nil {
		return nil, err
	}
	return &optimizer.Result{Plan: best.Plan, Cost: best.Cost, PlansConsidered: considered}, nil
}
