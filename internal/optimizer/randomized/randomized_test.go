package randomized

import (
	"math/rand"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/cost"
	"raqo/internal/optimizer"
	"raqo/internal/optimizer/optimizertest"
	"raqo/internal/optimizer/selinger"
	"raqo/internal/plan"
)

func coster() *optimizertest.SizeCoster {
	return &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}}
}

func query(t *testing.T, s *catalog.Schema, rels ...string) *plan.Query {
	t.Helper()
	q, err := plan.NewQuery(s, rels...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPlanValidAndNearOptimal(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, catalog.Lineitem, catalog.Orders, catalog.Customer, catalog.Nation, catalog.Region)
	p := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(7)), Opts: Options{Iterations: 30}}
	got, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	want, err := selinger.Exhaustive(coster(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Randomized search explores bushy trees too, so it can only match or
	// beat the left-deep optimum... but it is approximate, so allow 40%.
	if got.Cost.Seconds > want.Cost.Seconds*1.4 {
		t.Errorf("randomized cost %v vs left-deep optimum %v (>1.4x)", got.Cost.Seconds, want.Cost.Seconds)
	}
	if got.PlansConsidered < 10 {
		t.Errorf("considered = %d", got.PlansConsidered)
	}
}

func TestParetoArchiveIsNonDominated(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, s.Tables()...)
	p := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(11))}
	archive, considered, err := p.PlanPareto(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(archive) == 0 || considered == 0 {
		t.Fatal("empty archive")
	}
	for i, a := range archive {
		for j, b := range archive {
			if i == j {
				continue
			}
			av := cost.Vector{Time: a.Cost.Seconds, Money: a.Cost.Money}
			bv := cost.Vector{Time: b.Cost.Seconds, Money: b.Cost.Money}
			if av.Dominates(bv) {
				t.Errorf("archive entry %d dominates %d", i, j)
			}
		}
		if err := a.Plan.Validate(q); err != nil {
			t.Errorf("entry %d invalid: %v", i, err)
		}
	}
}

func TestPlanDeterministicWithSeed(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, s.Tables()...)
	run := func() string {
		p := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(5))}
		res, err := p.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Plan.Signature()
	}
	if run() != run() {
		t.Error("same seed produced different plans")
	}
}

func TestPlanScalesTo100Tables(t *testing.T) {
	if testing.Short() {
		t.Skip("large schema")
	}
	rng := rand.New(rand.NewSource(99))
	s, err := catalog.Random(rng, 100, catalog.DefaultRandomConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := query(t, s, s.Tables()...)
	p := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(100)), Opts: Options{Iterations: 3, Seeds: 4}}
	res, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Joins()) != 99 {
		t.Errorf("joins = %d, want 99", len(res.Plan.Joins()))
	}
}

func TestPlanErrors(t *testing.T) {
	s := catalog.TPCH(1)
	q := query(t, s, catalog.Lineitem, catalog.Orders)
	if _, err := (&Planner{RNG: rand.New(rand.NewSource(1))}).Plan(q); err == nil {
		t.Error("nil coster accepted")
	}
	// A nil RNG is valid: the planner falls back to its Seed field.
	if _, err := (&Planner{Coster: coster()}).Plan(q); err != nil {
		t.Errorf("nil RNG (seed fallback): %v", err)
	}
	p := &Planner{Coster: optimizertest.FailingCoster{}, RNG: rand.New(rand.NewSource(1))}
	if _, err := p.Plan(q); err == nil {
		t.Error("all-infeasible plans should error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Iterations != 10 || o.Seeds != 10 || o.Epsilon != 0.1 || o.MutationsPerPlan != 4 || o.Restarts != 1 {
		t.Errorf("defaults = %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Iterations: 3, Seeds: 2, Epsilon: 0.5, MutationsPerPlan: 1, Restarts: 4}.withDefaults()
	if o2 != (Options{Iterations: 3, Seeds: 2, Epsilon: 0.5, MutationsPerPlan: 1, Restarts: 4}) {
		t.Errorf("explicit = %+v", o2)
	}
}

// The winner plan must carry resource annotations after Plan returns.
func TestPlanAnnotatesResources(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, catalog.Lineitem, catalog.Orders, catalog.Customer)
	p := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(21))}
	res, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Plan.Joins() {
		if j.Res.IsZero() {
			t.Errorf("join over %v unannotated", j.Relations())
		}
	}
}

var _ optimizer.Planner = (*Planner)(nil)
