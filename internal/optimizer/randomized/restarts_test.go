package randomized

import (
	"math/rand"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/cost"
)

// TestRestartsDeterministicAcrossWorkers: multi-restart search must produce
// the same merged archive no matter how many workers execute the restarts,
// and across repeated runs with the same seed.
func TestRestartsDeterministicAcrossWorkers(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, catalog.Lineitem, catalog.Orders, catalog.Customer, catalog.Nation, catalog.Region)
	run := func(workers int) ([]string, int) {
		p := &Planner{
			Coster:  coster(),
			Seed:    42,
			Workers: workers,
			Opts:    Options{Restarts: 4, Iterations: 5},
		}
		archive, considered, err := p.PlanPareto(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sigs := make([]string, len(archive))
		for i, e := range archive {
			sigs[i] = e.Plan.Signature()
		}
		return sigs, considered
	}
	wantSigs, wantConsidered := run(1)
	for _, workers := range []int{2, 4, -1} {
		sigs, considered := run(workers)
		if len(sigs) != len(wantSigs) {
			t.Fatalf("workers=%d: archive size %d != %d", workers, len(sigs), len(wantSigs))
		}
		for i := range sigs {
			if sigs[i] != wantSigs[i] {
				t.Errorf("workers=%d: archive[%d] = %s, want %s", workers, i, sigs[i], wantSigs[i])
			}
		}
		if considered != wantConsidered {
			t.Errorf("workers=%d: considered %d != %d", workers, considered, wantConsidered)
		}
	}
}

// TestRestartsSeedFallbackMatchesRNG: with Restarts == 1, a nil RNG plus
// Seed must behave exactly like an explicit rand.New(rand.NewSource(Seed)).
func TestRestartsSeedFallbackMatchesRNG(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, s.Tables()...)
	withRNG := &Planner{Coster: coster(), RNG: rand.New(rand.NewSource(17))}
	withSeed := &Planner{Coster: coster(), Seed: 17}
	a, err := withRNG.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := withSeed.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.Signature() != b.Plan.Signature() || a.PlansConsidered != b.PlansConsidered {
		t.Errorf("seed fallback diverged from explicit RNG:\n%s\n%s", a.Plan.Signature(), b.Plan.Signature())
	}
}

// TestRestartsArchiveStaysNonDominated: the merged multi-restart archive
// must respect strict Pareto non-domination like a single search's.
func TestRestartsArchiveStaysNonDominated(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, s.Tables()...)
	p := &Planner{Coster: coster(), Seed: 3, Workers: 4, Opts: Options{Restarts: 3}}
	archive, considered, err := p.PlanPareto(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(archive) == 0 || considered == 0 {
		t.Fatal("empty merged archive")
	}
	for i, a := range archive {
		for j, b := range archive {
			if i == j {
				continue
			}
			av := cost.Vector{Time: a.Cost.Seconds, Money: a.Cost.Money}
			bv := cost.Vector{Time: b.Cost.Seconds, Money: b.Cost.Money}
			if av.Dominates(bv) {
				t.Errorf("merged archive entry %d dominates %d", i, j)
			}
		}
		if err := a.Plan.Validate(q); err != nil {
			t.Errorf("entry %d invalid: %v", i, err)
		}
	}
}
