package selinger

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/optimizer"
	"raqo/internal/optimizer/optimizertest"
	"raqo/internal/plan"
)

// cancellingCoster cancels a context after a fixed number of costing calls,
// simulating a client abandoning a request mid-search.
type cancellingCoster struct {
	inner  *optimizertest.SizeCoster
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (c *cancellingCoster) CostOperator(j *plan.Node) (optimizer.OpCost, error) {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.CostOperator(j)
}

func allTablesQuery(t *testing.T, s *catalog.Schema) *plan.Query {
	t.Helper()
	q, err := plan.NewQuery(s, s.Tables()...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPlanCancelledBeforeStart(t *testing.T) {
	s := catalog.TPCH(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := coster()
	p := &Planner{Coster: c, Ctx: ctx}
	_, err := p.Plan(allTablesQuery(t, s))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := c.Calls.Load(); n != 0 {
		t.Errorf("coster called %d times under a pre-cancelled context", n)
	}
}

// TestPlanObservesCancellationMidSearch asserts the DP loop stops costing
// soon after cancellation instead of finishing the enumeration.
func TestPlanObservesCancellationMidSearch(t *testing.T) {
	s := catalog.TPCH(1)
	q := allTablesQuery(t, s)

	// Baseline: how many costing calls does the full 8-relation DP make?
	base := coster()
	if _, err := (&Planner{Coster: base}).Plan(q); err != nil {
		t.Fatal(err)
	}
	full := base.Calls.Load()

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cc := &cancellingCoster{inner: coster(), cancel: cancel, after: 5}
		p := &Planner{Coster: cc, Workers: workers, Ctx: ctx}
		_, err := p.Plan(q)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The search may finish the mask (or, parallel, the claimed masks)
		// in flight, but must not run the rest of the enumeration. A mask
		// costs at most 2*relations candidates, so give it a level of slack.
		if got := cc.calls.Load(); got >= full/2 {
			t.Errorf("workers=%d: %d costing calls after cancellation (full DP = %d)", workers, got, full)
		}
	}
}
