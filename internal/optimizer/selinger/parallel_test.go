package selinger

import (
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/optimizer/optimizertest"
)

// TestParallelMatchesSequential is the determinism guarantee for the
// concurrent DP: for every worker count the plan must be bit-identical to
// the sequential run — same tree, same resources, same cost, and the same
// PlansConsidered count.
func TestParallelMatchesSequential(t *testing.T) {
	s := catalog.TPCH(10)
	queries := [][]string{
		{catalog.Lineitem, catalog.Orders},
		{catalog.Lineitem, catalog.Orders, catalog.Customer},
		{catalog.Customer, catalog.Orders, catalog.Nation, catalog.Region},
		{catalog.Lineitem, catalog.Orders, catalog.Customer, catalog.Nation, catalog.Region},
		{catalog.Part, catalog.PartSupp, catalog.Supplier, catalog.Nation, catalog.Lineitem},
		s.Tables(), // all 8 TPC-H tables
	}
	for _, rels := range queries {
		q := query(t, s, rels...)
		seq := &Planner{Coster: coster()}
		want, err := seq.Plan(q)
		if err != nil {
			t.Fatalf("%v: sequential: %v", rels, err)
		}
		for _, workers := range []int{2, 3, 8, -1} {
			par := &Planner{Coster: coster(), Workers: workers}
			got, err := par.Plan(q)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", rels, workers, err)
			}
			if g, w := got.Plan.SignatureWithResources(), want.Plan.SignatureWithResources(); g != w {
				t.Errorf("%v workers=%d: plan mismatch\nparallel:   %s\nsequential: %s", rels, workers, g, w)
			}
			if got.PlansConsidered != want.PlansConsidered {
				t.Errorf("%v workers=%d: considered %d != sequential %d",
					rels, workers, got.PlansConsidered, want.PlansConsidered)
			}
			if got.Cost != want.Cost {
				t.Errorf("%v workers=%d: cost %+v != sequential %+v", rels, workers, got.Cost, want.Cost)
			}
		}
	}
}

// TestParallelWorkersExceedMasks covers levels with fewer masks than
// workers (the pool must clamp, not deadlock or skip slots).
func TestParallelWorkersExceedMasks(t *testing.T) {
	s := catalog.TPCH(1)
	q := query(t, s, catalog.Lineitem, catalog.Orders)
	p := &Planner{Coster: coster(), Workers: 16}
	res, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
}

// TestParallelErrorPaths: a failing coster under the parallel path must
// still report "no feasible plan" rather than hang.
func TestParallelErrorPaths(t *testing.T) {
	s := catalog.TPCH(1)
	q := query(t, s, catalog.Lineitem, catalog.Orders, catalog.Customer)
	p := &Planner{Coster: optimizertest.FailingCoster{}, Workers: 4}
	if _, err := p.Plan(q); err == nil {
		t.Error("failing coster accepted under parallel DP")
	}
}
