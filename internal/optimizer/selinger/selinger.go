// Package selinger implements the classic System R bottom-up dynamic
// programming join-ordering algorithm over left-deep trees (Selinger et
// al., SIGMOD 1979), with the per-operator costing hook that lets RAQO plug
// resource planning into the enumeration.
//
// The DP can run its per-level enumeration concurrently (see
// Planner.Workers): within one subset size every candidate's inputs come
// from strictly smaller subsets, so the masks of a level are independent
// and fan out across a worker pool. Each mask is costed by exactly one
// worker in the same candidate order as the sequential DP and the level's
// results merge back in ascending mask order, so the chosen plan — and the
// PlansConsidered count — are bit-identical to the sequential run whenever
// the coster is deterministic.
package selinger

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"raqo/internal/optimizer"
	"raqo/internal/plan"
)

// MaxRelations bounds the DP: the table is O(2^n). Queries beyond this are
// for the randomized planner (the paper uses Selinger on TPC-H and the
// randomized planner for the 100-table scaling experiments).
const MaxRelations = 22

// Planner is a Selinger-style left-deep query planner.
type Planner struct {
	// Coster prices each candidate join operator (and, in RAQO mode, plans
	// its resources). Required. With Workers > 1 it is called from several
	// goroutines and must be safe for concurrent use.
	Coster optimizer.OperatorCoster

	// Workers bounds the per-DP-level fan-out: 0 or 1 runs the DP
	// sequentially; negative selects runtime.NumCPU().
	Workers int

	// Ctx, when non-nil, is observed between DP candidates: once it is
	// cancelled, Plan stops costing further masks and returns ctx.Err()
	// promptly, so an abandoned request stops burning CPU mid-search. nil
	// plans to completion (context.Background semantics).
	Ctx context.Context
}

type entry struct {
	node *plan.Node
	cost optimizer.OpCost
}

func (p *Planner) workers() int {
	w := p.Workers
	if w < 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// bestFor prices every (subset, join-algo) candidate for one mask, reading
// only entries of strictly smaller subsets from best. It preserves the
// sequential DP's candidate order and strict-improvement tie-breaking, so
// the winner is independent of which worker runs it.
func (p *Planner) bestFor(mask uint32, best map[uint32]*entry, leaves []*plan.Node, q *plan.Query, considered *int64) *entry {
	var bestE *entry
	for sub := mask; sub != 0; sub &= sub - 1 {
		i := bits.TrailingZeros32(sub)
		rest := mask &^ (1 << uint(i))
		prev, ok := best[rest]
		if !ok {
			continue // disconnected prefix
		}
		for _, algo := range plan.Algos {
			j, err := plan.NewJoin(q.Schema, algo, prev.node, leaves[i])
			if err != nil {
				continue // cross product: relation i not joinable with rest
			}
			oc, err := p.Coster.CostOperator(j)
			if err != nil {
				continue // e.g. no feasible resources for this operator
			}
			*considered++
			total := prev.cost.Add(oc)
			if bestE == nil || total.Seconds < bestE.cost.Seconds {
				bestE = &entry{node: j, cost: total}
			}
		}
	}
	return bestE
}

// Plan runs the DP and returns the cheapest (by time) left-deep plan.
func (p *Planner) Plan(q *plan.Query) (*optimizer.Result, error) {
	if p.Coster == nil {
		return nil, fmt.Errorf("selinger: nil coster")
	}
	n := len(q.Rels)
	if n > MaxRelations {
		return nil, fmt.Errorf("selinger: %d relations exceeds the DP limit of %d; use the randomized planner", n, MaxRelations)
	}
	leaves := make([]*plan.Node, n)
	for i, r := range q.Rels {
		leaf, err := plan.NewScan(q.Schema, r)
		if err != nil {
			return nil, err
		}
		leaves[i] = leaf
	}

	best := make(map[uint32]*entry, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = &entry{node: leaves[i]}
	}
	var considered int64

	// Group masks by subset size, ascending within each level — the
	// sequential iteration order.
	full := uint32(1)<<uint(n) - 1
	bySize := make([][]uint32, n+1)
	for mask := uint32(1); mask <= full; mask++ {
		if s := bits.OnesCount32(mask); s >= 2 {
			bySize[s] = append(bySize[s], mask)
		}
	}

	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.workers()
	for size := 2; size <= n; size++ {
		masks := bySize[size]
		if w := workers; w > 1 && len(masks) > 1 {
			if err := p.runLevel(ctx, masks, best, leaves, q, w, &considered); err != nil {
				return nil, err
			}
			continue
		}
		for _, mask := range masks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("selinger: planning cancelled: %w", err)
			}
			if e := p.bestFor(mask, best, leaves, q, &considered); e != nil {
				best[mask] = e
			}
		}
	}
	e, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("selinger: no feasible plan for %v", q.Rels)
	}
	return &optimizer.Result{Plan: e.node, Cost: e.cost, PlansConsidered: int(considered)}, nil
}

// runLevel fans one DP level's masks across a worker pool. Workers only
// read best (entries of smaller subsets) and write disjoint slots of a
// per-level result slice; the merge back into best is single-threaded and
// in ascending mask order, keeping the table identical to a sequential run.
// Cancellation is checked before each claimed mask; a cancelled level
// returns ctx's error without merging, since the table would be partial.
func (p *Planner) runLevel(ctx context.Context, masks []uint32, best map[uint32]*entry, leaves []*plan.Node, q *plan.Query, workers int, considered *int64) error {
	if workers > len(masks) {
		workers = len(masks)
	}
	results := make([]*entry, len(masks))
	var next atomic.Int64
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(masks) || ctx.Err() != nil {
					break
				}
				results[i] = p.bestFor(masks[i], best, leaves, q, &local)
			}
			total.Add(local)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("selinger: planning cancelled: %w", err)
	}
	*considered += total.Load()
	for i, e := range results {
		if e != nil {
			best[masks[i]] = e
		}
	}
	return nil
}

// Exhaustive enumerates every left-deep join order and operator combination
// and returns the global optimum. It is exponential-factorial and intended
// only for validating the DP in tests and ablations (n <= ~7).
func Exhaustive(coster optimizer.OperatorCoster, q *plan.Query) (*optimizer.Result, error) {
	n := len(q.Rels)
	if n > 7 {
		return nil, fmt.Errorf("selinger: exhaustive search limited to 7 relations, got %d", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	bestCost := math.Inf(1)
	var best *plan.Node
	var bestOC optimizer.OpCost
	considered := 0

	algosFor := func(k int) [][]plan.JoinAlgo {
		// all algo assignments for k joins
		out := [][]plan.JoinAlgo{{}}
		for i := 0; i < k; i++ {
			var next [][]plan.JoinAlgo
			for _, pfx := range out {
				for _, a := range plan.Algos {
					row := append(append([]plan.JoinAlgo(nil), pfx...), a)
					next = append(next, row)
				}
			}
			out = next
		}
		return out
	}
	assignments := algosFor(n - 1)

	var permute func(k int) error
	permute = func(k int) error {
		if k == n {
			for _, algos := range assignments {
				cur, err := plan.NewScan(q.Schema, q.Rels[perm[0]])
				if err != nil {
					return err
				}
				valid := true
				for i := 1; i < n && valid; i++ {
					leaf, err := plan.NewScan(q.Schema, q.Rels[perm[i]])
					if err != nil {
						return err
					}
					j, err := plan.NewJoin(q.Schema, algos[i-1], cur, leaf)
					if err != nil {
						valid = false
						break
					}
					cur = j
				}
				if !valid {
					continue
				}
				oc, err := optimizer.PlanCost(coster, cur)
				if err != nil {
					continue
				}
				considered++
				if oc.Seconds < bestCost {
					bestCost = oc.Seconds
					best = cur
					bestOC = oc
				}
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := permute(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("selinger: exhaustive found no feasible plan")
	}
	return &optimizer.Result{Plan: best, Cost: bestOC, PlansConsidered: considered}, nil
}
