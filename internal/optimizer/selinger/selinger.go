// Package selinger implements the classic System R bottom-up dynamic
// programming join-ordering algorithm over left-deep trees (Selinger et
// al., SIGMOD 1979), with the per-operator costing hook that lets RAQO plug
// resource planning into the enumeration.
//
// The DP can run its per-level enumeration concurrently (see
// Planner.Workers): within one subset size every candidate's inputs come
// from strictly smaller subsets, so the masks of a level are independent
// and fan out across a worker pool. Each mask is costed by exactly one
// worker in the same candidate order as the sequential DP and the level's
// results merge back in ascending mask order, so the chosen plan — and the
// PlansConsidered count — are bit-identical to the sequential run whenever
// the coster is deterministic.
//
// The DP's working state — the best-plan table, per-level mask and result
// buffers, per-worker join scratch nodes and the node arena the winning
// sub-plans are materialized in — lives in a sync.Pool of dpState values,
// so repeated planning calls allocate near-zero: candidates are costed in
// reusable scratch nodes, only per-mask winners are materialized (in the
// arena), and the final plan is deep-copied out before the state is
// recycled.
package selinger

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"raqo/internal/optimizer"
	"raqo/internal/plan"
)

// MaxRelations bounds the DP: the table is O(2^n). Queries beyond this are
// for the randomized planner (the paper uses Selinger on TPC-H and the
// randomized planner for the 100-table scaling experiments).
const MaxRelations = 22

// sliceTableMax is the largest relation count for which the DP table is a
// dense mask-indexed slice (2^n entries); beyond it the table falls back
// to a map to avoid multi-megabyte slabs for the rare huge query.
const sliceTableMax = 16

// Planner is a Selinger-style left-deep query planner.
type Planner struct {
	// Coster prices each candidate join operator (and, in RAQO mode, plans
	// its resources). Required. With Workers > 1 it is called from several
	// goroutines and must be safe for concurrent use.
	Coster optimizer.OperatorCoster

	// Workers bounds the per-DP-level fan-out: 0 or 1 runs the DP
	// sequentially; negative selects runtime.NumCPU().
	Workers int

	// Ctx, when non-nil, is observed between DP candidates: once it is
	// cancelled, Plan stops costing further masks and returns ctx.Err()
	// promptly, so an abandoned request stops burning CPU mid-search. nil
	// plans to completion (context.Background semantics).
	Ctx context.Context
}

type entry struct {
	node *plan.Node
	cost optimizer.OpCost
}

// candidate is the outcome of costing every (subset, algo) pair for one
// mask: a recipe for the winning join, recorded by value so workers never
// materialize plan nodes. The winner is rebuilt in the arena at merge
// time.
type candidate struct {
	rest uint32 // mask of the left (smaller-subset) input
	leaf int    // index of the right input relation
	algo plan.JoinAlgo
	res  plan.Resources
	cost optimizer.OpCost // cumulative cost of the subtree
	ok   bool
}

// dpState is the reusable working memory of one Plan call.
type dpState struct {
	arena    plan.Arena
	leaves   []*plan.Node
	slice    []entry // dense table, mask-indexed (n <= sliceTableMax)
	m        map[uint32]entry
	useSlice bool
	level    []uint32 // masks of the current DP level, ascending
	results  []candidate
	scratch  []*plan.JoinScratch
}

var statePool = sync.Pool{New: func() any { return new(dpState) }}

// prepare sizes the table for an n-relation query and clears any previous
// run's entries (dpState.release drops the node pointers; the table cells
// themselves are cleared here, bounded to the 2^n cells this query uses).
func (st *dpState) prepare(n int) {
	if n <= sliceTableMax {
		size := 1 << uint(n)
		if cap(st.slice) < size {
			st.slice = make([]entry, size)
		} else {
			st.slice = st.slice[:size]
			for i := range st.slice {
				st.slice[i] = entry{}
			}
		}
		st.useSlice = true
		return
	}
	if st.m == nil {
		st.m = make(map[uint32]entry, 1<<12)
	} else {
		clear(st.m)
	}
	st.useSlice = false
}

// release recycles the arena and drops all plan-node pointers so a pooled
// state never retains a previous query's plans.
//
//raqo:noalloc
func (st *dpState) release() {
	st.arena.Reset()
	for i := range st.leaves {
		st.leaves[i] = nil
	}
	st.leaves = st.leaves[:0]
	if st.useSlice {
		for i := range st.slice {
			st.slice[i] = entry{}
		}
	} else if st.m != nil {
		clear(st.m)
	}
	st.level = st.level[:0]
	st.results = st.results[:0]
}

//raqo:noalloc
func (st *dpState) get(mask uint32) (entry, bool) {
	if st.useSlice {
		e := st.slice[mask]
		return e, e.node != nil
	}
	e, ok := st.m[mask]
	return e, ok
}

//raqo:noalloc
func (st *dpState) put(mask uint32, e entry) {
	if st.useSlice {
		st.slice[mask] = e
		return
	}
	st.m[mask] = e
}

// scratchFor returns w independent join-scratch nodes.
func (st *dpState) scratchFor(w int) []*plan.JoinScratch {
	for len(st.scratch) < w {
		st.scratch = append(st.scratch, &plan.JoinScratch{})
	}
	return st.scratch[:w]
}

func (p *Planner) workers() int {
	w := p.Workers
	if w < 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// bestFor prices every (subset, join-algo) candidate for one mask, reading
// only entries of strictly smaller subsets from the table. Candidates are
// built in the caller's scratch node and only the winning recipe is
// recorded, so no plan nodes are allocated. It preserves the sequential
// DP's candidate order and strict-improvement tie-breaking, so the winner
// is independent of which worker runs it.
func (p *Planner) bestFor(st *dpState, mask uint32, q *plan.Query, sc *plan.JoinScratch, considered *int64) candidate {
	var best candidate
	for sub := mask; sub != 0; sub &= sub - 1 {
		i := bits.TrailingZeros32(sub)
		rest := mask &^ (1 << uint(i))
		prev, ok := st.get(rest)
		if !ok {
			continue // disconnected prefix
		}
		for _, algo := range plan.Algos {
			j, err := sc.Join(q.Schema, algo, prev.node, st.leaves[i])
			if err != nil {
				continue // cross product: relation i not joinable with rest
			}
			oc, err := p.Coster.CostOperator(j)
			if err != nil {
				continue // e.g. no feasible resources for this operator
			}
			*considered++
			total := prev.cost.Add(oc)
			if !best.ok || total.Seconds < best.cost.Seconds {
				best = candidate{rest: rest, leaf: i, algo: algo, res: j.Res, cost: total, ok: true}
			}
		}
	}
	return best
}

// materialize rebuilds one winning candidate in the arena and records it
// in the table. Single-threaded: only the merge path calls it.
func (p *Planner) materialize(st *dpState, mask uint32, c candidate, q *plan.Query) error {
	prev, ok := st.get(c.rest)
	if !ok {
		return fmt.Errorf("selinger: internal: winner for %b references missing subset %b", mask, c.rest)
	}
	j, err := st.arena.Join(q.Schema, c.algo, prev.node, st.leaves[c.leaf])
	if err != nil {
		return fmt.Errorf("selinger: internal: rebuilding winner for %b: %w", mask, err)
	}
	j.Res = c.res
	st.put(mask, entry{node: j, cost: c.cost})
	return nil
}

// levelMasks fills st.level with the masks of one subset size in ascending
// order (Gosper's hack), matching the sequential enumeration order.
func (st *dpState) levelMasks(size int, full uint32) []uint32 {
	st.level = st.level[:0]
	for m := uint64(1)<<uint(size) - 1; m <= uint64(full); {
		st.level = append(st.level, uint32(m))
		c := m & -m
		r := m + c
		m = (((r ^ m) >> 2) / c) | r
	}
	return st.level
}

// Plan runs the DP and returns the cheapest (by time) left-deep plan.
func (p *Planner) Plan(q *plan.Query) (*optimizer.Result, error) {
	if p.Coster == nil {
		return nil, fmt.Errorf("selinger: nil coster")
	}
	n := len(q.Rels)
	if n > MaxRelations {
		return nil, fmt.Errorf("selinger: %d relations exceeds the DP limit of %d; use the randomized planner", n, MaxRelations)
	}

	st := statePool.Get().(*dpState)
	defer func() {
		st.release()
		statePool.Put(st)
	}()
	st.prepare(n)
	for _, r := range q.Rels {
		leaf, err := st.arena.Scan(q.Schema, r)
		if err != nil {
			return nil, err
		}
		st.leaves = append(st.leaves, leaf)
	}
	for i := 0; i < n; i++ {
		st.put(1<<uint(i), entry{node: st.leaves[i]})
	}
	var considered int64

	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.workers()
	full := uint32(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		masks := st.levelMasks(size, full)
		if w := workers; w > 1 && len(masks) > 1 {
			if err := p.runLevel(ctx, st, masks, q, w, &considered); err != nil {
				return nil, err
			}
			continue
		}
		sc := st.scratchFor(1)[0]
		for _, mask := range masks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("selinger: planning cancelled: %w", err)
			}
			if c := p.bestFor(st, mask, q, sc, &considered); c.ok {
				if err := p.materialize(st, mask, c, q); err != nil {
					return nil, err
				}
			}
		}
	}
	e, ok := st.get(full)
	if !ok {
		return nil, fmt.Errorf("selinger: no feasible plan for %v", q.Rels)
	}
	// The winning tree lives in the pooled arena; deep-copy it out before
	// the deferred release recycles the storage.
	return &optimizer.Result{Plan: e.node.Clone(), Cost: e.cost, PlansConsidered: int(considered)}, nil
}

// runLevel fans one DP level's masks across a worker pool. Workers only
// read table entries of smaller subsets and write disjoint slots of the
// per-level candidate buffer; the merge back into the table is
// single-threaded and in ascending mask order, keeping the table identical
// to a sequential run. Cancellation is checked before each claimed mask; a
// cancelled level returns ctx's error without merging, since the table
// would be partial.
func (p *Planner) runLevel(ctx context.Context, st *dpState, masks []uint32, q *plan.Query, workers int, considered *int64) error {
	if workers > len(masks) {
		workers = len(masks)
	}
	if cap(st.results) < len(masks) {
		st.results = make([]candidate, len(masks))
	} else {
		st.results = st.results[:len(masks)]
	}
	results := st.results
	scratch := st.scratchFor(workers)
	var next atomic.Int64
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *plan.JoinScratch) {
			defer wg.Done()
			var local int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(masks) || ctx.Err() != nil {
					break
				}
				results[i] = p.bestFor(st, masks[i], q, sc, &local)
			}
			total.Add(local)
		}(scratch[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("selinger: planning cancelled: %w", err)
	}
	*considered += total.Load()
	for i, c := range results {
		if c.ok {
			if err := p.materialize(st, masks[i], c, q); err != nil {
				return err
			}
		}
	}
	return nil
}

// Exhaustive enumerates every left-deep join order and operator combination
// and returns the global optimum. It is exponential-factorial and intended
// only for validating the DP in tests and ablations (n <= ~7).
func Exhaustive(coster optimizer.OperatorCoster, q *plan.Query) (*optimizer.Result, error) {
	n := len(q.Rels)
	if n > 7 {
		return nil, fmt.Errorf("selinger: exhaustive search limited to 7 relations, got %d", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	bestCost := math.Inf(1)
	var best *plan.Node
	var bestOC optimizer.OpCost
	considered := 0

	algosFor := func(k int) [][]plan.JoinAlgo {
		// all algo assignments for k joins
		out := [][]plan.JoinAlgo{{}}
		for i := 0; i < k; i++ {
			var next [][]plan.JoinAlgo
			for _, pfx := range out {
				for _, a := range plan.Algos {
					row := append(append([]plan.JoinAlgo(nil), pfx...), a)
					next = append(next, row)
				}
			}
			out = next
		}
		return out
	}
	assignments := algosFor(n - 1)

	var permute func(k int) error
	permute = func(k int) error {
		if k == n {
			for _, algos := range assignments {
				cur, err := plan.NewScan(q.Schema, q.Rels[perm[0]])
				if err != nil {
					return err
				}
				valid := true
				for i := 1; i < n && valid; i++ {
					leaf, err := plan.NewScan(q.Schema, q.Rels[perm[i]])
					if err != nil {
						return err
					}
					j, err := plan.NewJoin(q.Schema, algos[i-1], cur, leaf)
					if err != nil {
						valid = false
						break
					}
					cur = j
				}
				if !valid {
					continue
				}
				oc, err := optimizer.PlanCost(coster, cur)
				if err != nil {
					continue
				}
				considered++
				if oc.Seconds < bestCost {
					bestCost = oc.Seconds
					best = cur
					bestOC = oc
				}
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := permute(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("selinger: exhaustive found no feasible plan")
	}
	return &optimizer.Result{Plan: best, Cost: bestOC, PlansConsidered: considered}, nil
}
