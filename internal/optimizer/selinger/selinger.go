// Package selinger implements the classic System R bottom-up dynamic
// programming join-ordering algorithm over left-deep trees (Selinger et
// al., SIGMOD 1979), with the per-operator costing hook that lets RAQO plug
// resource planning into the enumeration.
package selinger

import (
	"fmt"
	"math"
	"math/bits"

	"raqo/internal/optimizer"
	"raqo/internal/plan"
)

// MaxRelations bounds the DP: the table is O(2^n). Queries beyond this are
// for the randomized planner (the paper uses Selinger on TPC-H and the
// randomized planner for the 100-table scaling experiments).
const MaxRelations = 22

// Planner is a Selinger-style left-deep query planner.
type Planner struct {
	// Coster prices each candidate join operator (and, in RAQO mode, plans
	// its resources). Required.
	Coster optimizer.OperatorCoster
}

type entry struct {
	node *plan.Node
	cost optimizer.OpCost
}

// Plan runs the DP and returns the cheapest (by time) left-deep plan.
func (p *Planner) Plan(q *plan.Query) (*optimizer.Result, error) {
	if p.Coster == nil {
		return nil, fmt.Errorf("selinger: nil coster")
	}
	n := len(q.Rels)
	if n > MaxRelations {
		return nil, fmt.Errorf("selinger: %d relations exceeds the DP limit of %d; use the randomized planner", n, MaxRelations)
	}
	leaves := make([]*plan.Node, n)
	for i, r := range q.Rels {
		leaf, err := plan.NewScan(q.Schema, r)
		if err != nil {
			return nil, err
		}
		leaves[i] = leaf
	}

	best := make(map[uint32]*entry, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = &entry{node: leaves[i]}
	}
	considered := 0

	full := uint32(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		for mask := uint32(1); mask <= full; mask++ {
			if bits.OnesCount32(mask) != size {
				continue
			}
			var bestE *entry
			for sub := mask; sub != 0; sub &= sub - 1 {
				i := bits.TrailingZeros32(sub)
				rest := mask &^ (1 << uint(i))
				prev, ok := best[rest]
				if !ok {
					continue // disconnected prefix
				}
				for _, algo := range plan.Algos {
					j, err := plan.NewJoin(q.Schema, algo, prev.node, leaves[i])
					if err != nil {
						continue // cross product: relation i not joinable with rest
					}
					oc, err := p.Coster.CostOperator(j)
					if err != nil {
						continue // e.g. no feasible resources for this operator
					}
					considered++
					total := prev.cost.Add(oc)
					if bestE == nil || total.Seconds < bestE.cost.Seconds {
						bestE = &entry{node: j, cost: total}
					}
				}
			}
			if bestE != nil {
				best[mask] = bestE
			}
		}
	}
	e, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("selinger: no feasible plan for %v", q.Rels)
	}
	return &optimizer.Result{Plan: e.node, Cost: e.cost, PlansConsidered: considered}, nil
}

// Exhaustive enumerates every left-deep join order and operator combination
// and returns the global optimum. It is exponential-factorial and intended
// only for validating the DP in tests and ablations (n <= ~7).
func Exhaustive(coster optimizer.OperatorCoster, q *plan.Query) (*optimizer.Result, error) {
	n := len(q.Rels)
	if n > 7 {
		return nil, fmt.Errorf("selinger: exhaustive search limited to 7 relations, got %d", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	bestCost := math.Inf(1)
	var best *plan.Node
	var bestOC optimizer.OpCost
	considered := 0

	algosFor := func(k int) [][]plan.JoinAlgo {
		// all algo assignments for k joins
		out := [][]plan.JoinAlgo{{}}
		for i := 0; i < k; i++ {
			var next [][]plan.JoinAlgo
			for _, pfx := range out {
				for _, a := range plan.Algos {
					row := append(append([]plan.JoinAlgo(nil), pfx...), a)
					next = append(next, row)
				}
			}
			out = next
		}
		return out
	}
	assignments := algosFor(n - 1)

	var permute func(k int) error
	permute = func(k int) error {
		if k == n {
			for _, algos := range assignments {
				cur, err := plan.NewScan(q.Schema, q.Rels[perm[0]])
				if err != nil {
					return err
				}
				valid := true
				for i := 1; i < n && valid; i++ {
					leaf, err := plan.NewScan(q.Schema, q.Rels[perm[i]])
					if err != nil {
						return err
					}
					j, err := plan.NewJoin(q.Schema, algos[i-1], cur, leaf)
					if err != nil {
						valid = false
						break
					}
					cur = j
				}
				if !valid {
					continue
				}
				oc, err := optimizer.PlanCost(coster, cur)
				if err != nil {
					continue
				}
				considered++
				if oc.Seconds < bestCost {
					bestCost = oc.Seconds
					best = cur
					bestOC = oc
				}
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := permute(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("selinger: exhaustive found no feasible plan")
	}
	return &optimizer.Result{Plan: best, Cost: bestOC, PlansConsidered: considered}, nil
}
