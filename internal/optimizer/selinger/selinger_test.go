package selinger

import (
	"math/rand"
	"strings"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/optimizer/optimizertest"
	"raqo/internal/plan"
)

func coster() *optimizertest.SizeCoster {
	return &optimizertest.SizeCoster{Res: plan.Resources{Containers: 10, ContainerGB: 3}}
}

func query(t *testing.T, s *catalog.Schema, rels ...string) *plan.Query {
	t.Helper()
	q, err := plan.NewQuery(s, rels...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPlanSingleRelation(t *testing.T) {
	s := catalog.TPCH(1)
	p := &Planner{Coster: coster()}
	res, err := p.Plan(query(t, s, catalog.Orders))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsScan() {
		t.Error("single-relation plan should be a scan")
	}
	if res.Cost.Seconds != 0 {
		t.Errorf("scan cost = %v", res.Cost.Seconds)
	}
}

func TestPlanMatchesExhaustive(t *testing.T) {
	s := catalog.TPCH(10)
	queries := [][]string{
		{catalog.Lineitem, catalog.Orders},
		{catalog.Lineitem, catalog.Orders, catalog.Customer},
		{catalog.Customer, catalog.Orders, catalog.Nation, catalog.Region},
		{catalog.Lineitem, catalog.Orders, catalog.Customer, catalog.Nation, catalog.Region},
		{catalog.Part, catalog.PartSupp, catalog.Supplier, catalog.Nation, catalog.Lineitem},
	}
	for _, rels := range queries {
		q := query(t, s, rels...)
		dp := &Planner{Coster: coster()}
		got, err := dp.Plan(q)
		if err != nil {
			t.Fatalf("%v: %v", rels, err)
		}
		want, err := Exhaustive(coster(), q)
		if err != nil {
			t.Fatalf("%v: exhaustive: %v", rels, err)
		}
		// The DP searches left-deep trees only, and so does Exhaustive, so
		// costs must match exactly.
		if diff := got.Cost.Seconds - want.Cost.Seconds; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: DP cost %v != exhaustive %v\nDP:\n%s\nEx:\n%s",
				rels, got.Cost.Seconds, want.Cost.Seconds, got.Plan, want.Plan)
		}
		if err := got.Plan.Validate(q); err != nil {
			t.Errorf("%v: invalid plan: %v", rels, err)
		}
	}
}

func TestPlanAllTPCH(t *testing.T) {
	s := catalog.TPCH(10)
	q := query(t, s, s.Tables()...)
	p := &Planner{Coster: coster()}
	res, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Joins()) != 7 {
		t.Errorf("joins = %d, want 7", len(res.Plan.Joins()))
	}
	if res.PlansConsidered < 100 {
		t.Errorf("considered = %d, suspiciously few", res.PlansConsidered)
	}
	// Left-deep: right child of every join is a scan.
	for _, j := range res.Plan.Joins() {
		if !j.Right.IsScan() && !j.Left.IsScan() {
			t.Errorf("bushy join found in left-deep plan:\n%s", res.Plan)
		}
	}
}

func TestPlanOnRandomSchemas(t *testing.T) {
	cfg := catalog.DefaultRandomConfig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := catalog.Random(rng, 10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := query(t, s, s.Tables()...)
		p := &Planner{Coster: coster()}
		res, err := p.Plan(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Plan.Validate(q); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	s := catalog.TPCH(1)
	q := query(t, s, catalog.Lineitem, catalog.Orders)
	p := &Planner{}
	if _, err := p.Plan(q); err == nil {
		t.Error("nil coster accepted")
	}
	p = &Planner{Coster: optimizertest.FailingCoster{}}
	if _, err := p.Plan(q); err == nil || !strings.Contains(err.Error(), "no feasible plan") {
		t.Errorf("failing coster: err = %v", err)
	}
	// Too many relations.
	rng := rand.New(rand.NewSource(1))
	big, err := catalog.Random(rng, MaxRelations+1, catalog.DefaultRandomConfig())
	if err != nil {
		t.Fatal(err)
	}
	qb := query(t, big, big.Tables()...)
	p = &Planner{Coster: coster()}
	if _, err := p.Plan(qb); err == nil {
		t.Error("oversized query accepted")
	}
}

func TestExhaustiveLimit(t *testing.T) {
	s := catalog.TPCH(1)
	q := query(t, s, s.Tables()...)
	if _, err := Exhaustive(coster(), q); err == nil {
		t.Error("8-relation exhaustive should be rejected")
	}
}
