package plan

import (
	"fmt"

	"raqo/internal/catalog"
)

// This file provides the zero-allocation construction paths the planners'
// hot loops use: an Arena that hands out reusable Node storage in chunks,
// and a JoinScratch that re-initializes one Node in place for
// cost-and-discard candidate evaluation. Both recompute the same
// statistics as NewScan/NewJoin — plans built through them are
// indistinguishable from heap-constructed ones except for lifetime:
// arena nodes are valid only until the next Reset, and anything that
// outlives the arena must be deep-copied out with Clone.

// arenaChunk is the node count of one arena slab. Chunks are fixed-size
// so handed-out *Node pointers never move when the arena grows.
const arenaChunk = 64

// arenaRelChunk is the minimum capacity of one relation-name slab.
const arenaRelChunk = 1024

// Arena allocates plan nodes (and their relation lists) from reusable
// slabs. Reset recycles every outstanding node at once while keeping the
// slabs, so a planner that builds thousands of DP entries per call
// allocates only on its first use. An Arena is not safe for concurrent
// use.
type Arena struct {
	chunks [][]Node // fixed-size slabs; pointers into them are stable
	ci     int      // chunk currently being carved
	used   int      // nodes handed out of chunks[ci]
	rels   []string // current relation-name slab, carved by length
}

// Reset recycles all nodes previously allocated from the arena. Their
// storage is reused by subsequent allocations, so callers must have
// Clone()d any tree that outlives the arena.
func (a *Arena) Reset() {
	a.ci, a.used = 0, 0
	a.rels = a.rels[:0]
}

// alloc carves one zeroed node out of the current slab.
func (a *Arena) alloc() *Node {
	if a.ci < len(a.chunks) && a.used == arenaChunk {
		a.ci++
		a.used = 0
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Node, arenaChunk))
	}
	n := &a.chunks[a.ci][a.used]
	a.used++
	n.reset()
	return n
}

// relSpace returns a zero-length slice with capacity for need relation
// names, carved from the current slab. When a slab fills, the arena
// abandons it for a fresh one; previously returned slices keep pointing
// into the old slab, which stays alive for as long as they do.
func (a *Arena) relSpace(need int) []string {
	if cap(a.rels)-len(a.rels) < need {
		size := arenaRelChunk
		if need > size {
			size = need
		}
		a.rels = make([]string, 0, size)
	}
	start := len(a.rels)
	return a.rels[start:start]
}

// commitRels records that merged (carved via relSpace) is now in use.
func (a *Arena) commitRels(merged []string) {
	a.rels = a.rels[:len(a.rels)+len(merged)]
}

// Scan builds a scan leaf in the arena, equivalent to NewScan.
func (a *Arena) Scan(s *catalog.Schema, table string) (*Node, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %q", table)
	}
	n := a.alloc()
	n.Table = table
	n.rows = float64(t.Rows)
	n.bytes = float64(t.Size())
	rl := append(a.relSpace(1), table)
	a.commitRels(rl)
	n.rels = rl
	return n, nil
}

// Join builds a join node in the arena, equivalent to NewJoin but
// returning the bare sentinel errors (ErrOverlap, ErrCrossProduct) on
// rejected candidates so the planner's skip path stays allocation-free.
func (a *Arena) Join(s *catalog.Schema, algo JoinAlgo, left, right *Node) (*Node, error) {
	merged, err := mergeRelsInto(a.relSpace(len(left.rels)+len(right.rels)), left.rels, right.rels)
	if err != nil {
		return nil, err
	}
	rows, bytes, err := joinStats(s, left, right)
	if err != nil {
		return nil, err
	}
	a.commitRels(merged)
	n := a.alloc()
	n.Algo = algo
	n.Left, n.Right = left, right
	n.rows, n.bytes = rows, bytes
	n.rels = merged
	return n, nil
}

// JoinScratch re-initializes a single join node in place, for hot loops
// that build a candidate, cost it, and either discard it or copy the
// few values worth keeping. The returned node aliases the scratch: it is
// valid only until the next Join call, and must never be linked into a
// tree that outlives it. Not safe for concurrent use; parallel planners
// use one JoinScratch per worker.
type JoinScratch struct {
	n    Node
	rels []string
}

// Join points the scratch node at a join of left and right, equivalent
// to NewJoin but reusing the scratch's storage. Rejected candidates
// return the bare sentinel errors (ErrOverlap, ErrCrossProduct).
func (sc *JoinScratch) Join(s *catalog.Schema, algo JoinAlgo, left, right *Node) (*Node, error) {
	merged, err := mergeRelsInto(sc.rels[:0], left.rels, right.rels)
	if err != nil {
		return nil, err
	}
	sc.rels = merged
	rows, bytes, err := joinStats(s, left, right)
	if err != nil {
		return nil, err
	}
	n := &sc.n
	n.reset()
	n.Algo = algo
	n.Left, n.Right = left, right
	n.rows, n.bytes = rows, bytes
	n.rels = merged
	return n, nil
}
