package plan

import (
	"encoding/json"
	"fmt"

	"raqo/internal/catalog"
)

// nodeJSON is the wire form of a plan operator. Statistics are not
// serialized: they are derived from the schema on decode, which guarantees
// a decoded plan is internally consistent with the catalog it is decoded
// against.
type nodeJSON struct {
	Table string    `json:"table,omitempty"`
	Algo  string    `json:"algo,omitempty"`
	Res   *resJSON  `json:"resources,omitempty"`
	Left  *nodeJSON `json:"left,omitempty"`
	Right *nodeJSON `json:"right,omitempty"`
}

type resJSON struct {
	Containers  int     `json:"containers"`
	ContainerGB float64 `json:"containerGB"`
}

// MarshalJSON encodes the plan tree (shape, operator implementations and
// resource annotations).
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.toJSON())
}

func (n *Node) toJSON() *nodeJSON {
	if n == nil {
		return nil
	}
	out := &nodeJSON{}
	if n.IsScan() {
		out.Table = n.Table
		return out
	}
	out.Algo = n.Algo.String()
	if !n.Res.IsZero() {
		out.Res = &resJSON{Containers: n.Res.Containers, ContainerGB: n.Res.ContainerGB}
	}
	out.Left = n.Left.toJSON()
	out.Right = n.Right.toJSON()
	return out
}

// Decode reconstructs a plan from its JSON form against a schema,
// re-deriving all statistics and re-validating join edges. It is the
// inverse of MarshalJSON.
func Decode(s *catalog.Schema, data []byte) (*Node, error) {
	var wire nodeJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	return fromJSON(s, &wire)
}

func fromJSON(s *catalog.Schema, w *nodeJSON) (*Node, error) {
	if w == nil {
		return nil, fmt.Errorf("plan: decode: missing node")
	}
	if w.Table != "" {
		if w.Left != nil || w.Right != nil {
			return nil, fmt.Errorf("plan: decode: scan %q has children", w.Table)
		}
		return NewScan(s, w.Table)
	}
	var algo JoinAlgo
	switch w.Algo {
	case "SMJ":
		algo = SMJ
	case "BHJ":
		algo = BHJ
	default:
		return nil, fmt.Errorf("plan: decode: unknown algorithm %q", w.Algo)
	}
	left, err := fromJSON(s, w.Left)
	if err != nil {
		return nil, err
	}
	right, err := fromJSON(s, w.Right)
	if err != nil {
		return nil, err
	}
	n, err := NewJoin(s, algo, left, right)
	if err != nil {
		return nil, err
	}
	if w.Res != nil {
		n.Res = Resources{Containers: w.Res.Containers, ContainerGB: w.Res.ContainerGB}
	}
	return n, nil
}
