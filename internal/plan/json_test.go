package plan

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"raqo/internal/catalog"
)

func TestJSONRoundTrip(t *testing.T) {
	s := catalog.TPCH(100)
	p, err := LeftDeep(s, BHJ, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range p.Joins() {
		j.Res = Resources{Containers: 12, ContainerGB: 7}
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SignatureWithResources() != p.SignatureWithResources() {
		t.Errorf("round trip changed the plan:\n%s\nvs\n%s", p, back)
	}
	// Statistics are re-derived, not serialized.
	if back.Rows() != p.Rows() || back.Bytes() != p.Bytes() {
		t.Error("round trip lost statistics")
	}
	if !strings.Contains(string(data), `"algo":"BHJ"`) {
		t.Errorf("wire form: %s", data)
	}
}

func TestJSONScanOnly(t *testing.T) {
	s := catalog.TPCH(1)
	scan, err := NewScan(s, catalog.Orders)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(scan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsScan() || back.Table != catalog.Orders {
		t.Errorf("decoded %v", back)
	}
}

func TestDecodeErrors(t *testing.T) {
	s := catalog.TPCH(1)
	cases := []string{
		`not json`,
		`{"table":"ghost"}`,
		`{"algo":"XXX","left":{"table":"orders"},"right":{"table":"lineitem"}}`,
		`{"algo":"SMJ","left":{"table":"customer"},"right":{"table":"part"}}`, // cross product
		`{"algo":"SMJ","left":{"table":"orders"}}`,                            // missing child
		`{"table":"orders","left":{"table":"lineitem"}}`,                      // scan with child
	}
	for _, c := range cases {
		if _, err := Decode(s, []byte(c)); err == nil {
			t.Errorf("decoded invalid input %q", c)
		}
	}
}

// Property: random valid trees round-trip to identical signatures.
func TestJSONRoundTripProperty(t *testing.T) {
	s := catalog.TPCH(10)
	rels := []string{catalog.Lineitem, catalog.Orders, catalog.Customer, catalog.Nation, catalog.Region}
	f := func(seed int64, algoBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		algo := SMJ
		if algoBits%2 == 1 {
			algo = BHJ
		}
		p, err := LeftDeep(s, algo, rels...)
		if err != nil {
			return false
		}
		for i, j := range p.Joins() {
			j.Res = Resources{Containers: 1 + i, ContainerGB: float64(1 + int(algoBits)%9)}
		}
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		back, err := Decode(s, data)
		if err != nil {
			return false
		}
		return back.SignatureWithResources() == p.SignatureWithResources()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
