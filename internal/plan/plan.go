// Package plan defines logical queries and physical plan trees for the RAQO
// optimizer, together with cardinality and size estimation over a catalog
// join graph, and the per-operator resource annotations that make a plan a
// joint query/resource plan.
package plan

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"raqo/internal/catalog"
	"raqo/internal/intern"
	"raqo/internal/units"
)

// Sentinel errors for the candidate-rejection paths of join construction.
// The planners treat a failed join candidate as control flow (skip the
// candidate), so these are returned un-wrapped by the zero-allocation
// constructors (Arena.Join, JoinScratch.Join); NewJoin wraps them with
// the relation context for human-facing callers.
var (
	// ErrCrossProduct reports a join whose sides share no join-graph edge.
	ErrCrossProduct = errors.New("plan: cross product join")
	// ErrOverlap reports a join whose sides cover a common relation.
	ErrOverlap = errors.New("plan: relation appears on both join sides")
)

// JoinAlgo is a physical join operator implementation. The paper studies
// Hive's two stable implementations: shuffle sort-merge join and broadcast
// hash join.
type JoinAlgo int

// Join operator implementations.
const (
	SMJ JoinAlgo = iota // shuffle sort-merge join
	BHJ                 // broadcast hash join (map join)
)

// Algos lists all join implementations, in a stable order.
var Algos = []JoinAlgo{SMJ, BHJ}

// String returns the short operator name used throughout the paper.
func (a JoinAlgo) String() string {
	switch a {
	case SMJ:
		return "SMJ"
	case BHJ:
		return "BHJ"
	}
	return fmt.Sprintf("JoinAlgo(%d)", int(a))
}

// Resources is the resource configuration of one plan operator: the number
// of concurrent containers and the size of each container. It corresponds
// to the YARN container model in Section II-B. A zero value means
// "unplanned".
type Resources struct {
	Containers  int
	ContainerGB float64
}

// IsZero reports whether no resources have been planned.
func (r Resources) IsZero() bool { return r.Containers == 0 && r.ContainerGB == 0 }

// TotalGB is the total memory reserved by the configuration.
func (r Resources) TotalGB() float64 { return float64(r.Containers) * r.ContainerGB }

// String renders the configuration, e.g. "10x3GB".
func (r Resources) String() string {
	if r.IsZero() {
		return "unplanned"
	}
	return fmt.Sprintf("%dx%.0fGB", r.Containers, r.ContainerGB)
}

// Query is a logical join query: the set of relations to join over a
// schema's join graph. The paper's queries "consist of a set of relations
// that need to be joined".
type Query struct {
	Schema *catalog.Schema
	Rels   []string // sorted, unique
}

// NewQuery validates and normalizes a query. The relations must exist, be
// unique, and form a connected subgraph (no cross products).
func NewQuery(s *catalog.Schema, rels ...string) (*Query, error) {
	if s == nil {
		return nil, fmt.Errorf("plan: nil schema")
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("plan: query needs at least one relation")
	}
	sorted := append([]string(nil), rels...)
	sort.Strings(sorted)
	for i, r := range sorted {
		if _, ok := s.Table(r); !ok {
			return nil, fmt.Errorf("plan: unknown relation %q", r)
		}
		if i > 0 && sorted[i-1] == r {
			return nil, fmt.Errorf("plan: duplicate relation %q", r)
		}
	}
	if !s.Connected(sorted) {
		return nil, fmt.Errorf("plan: relations %v are not connected in the join graph", sorted)
	}
	return &Query{Schema: s, Rels: sorted}, nil
}

// Index returns the position of a relation in the query's normalized
// relation list, or -1.
func (q *Query) Index(rel string) int {
	i := sort.SearchStrings(q.Rels, rel)
	if i < len(q.Rels) && q.Rels[i] == rel {
		return i
	}
	return -1
}

// NumJoins returns the number of binary joins any plan for the query has.
func (q *Query) NumJoins() int { return len(q.Rels) - 1 }

// Node is a physical plan operator: either a table scan (Table != "") or a
// binary join. Statistics (estimated output rows/bytes) are computed when
// the node is built and treated as immutable; the resource annotation Res
// is the one mutable field, filled in by the resource planner.
type Node struct {
	Table string // scan leaf if non-empty

	Algo        JoinAlgo
	Left, Right *Node

	// Res is the resource configuration chosen for this operator by the
	// resource planner. Scans share the container wave of the join above
	// them (operators are pipelined within shuffle boundaries, §VI-B), so
	// Res is only meaningful on join nodes.
	Res Resources

	rows  float64
	bytes float64
	rels  []string // sorted relations covered by this subtree

	// sig caches Signature(). A node's shape (table, algo, children,
	// statistics) is immutable after construction — only Res mutates — so
	// the shape signature is cached unconditionally once computed.
	sig atomic.Pointer[string]
	// sigRes caches SignatureWithResources() together with a fingerprint
	// of the resource annotations it was computed under; mutating any Res
	// in the subtree changes the fingerprint and invalidates the cache.
	sigRes atomic.Pointer[resSignature]
}

// resSignature is a cached SignatureWithResources with the resource
// fingerprint it is valid for.
type resSignature struct {
	fp uint64
	s  string
}

// reset returns the node to its zero state for reuse by an Arena or
// JoinScratch. Fields are cleared individually because the atomic cache
// pointers make Node non-copyable.
func (n *Node) reset() {
	n.Table = ""
	n.Algo = 0
	n.Left, n.Right = nil, nil
	n.Res = Resources{}
	n.rows, n.bytes = 0, 0
	n.rels = nil
	n.sig.Store(nil)
	n.sigRes.Store(nil)
}

// NewScan builds a scan leaf for the named table.
func NewScan(s *catalog.Schema, table string) (*Node, error) {
	t, ok := s.Table(table)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %q", table)
	}
	return &Node{
		Table: table,
		rows:  float64(t.Rows),
		bytes: float64(t.Size()),
		rels:  []string{table},
	}, nil
}

// NewJoin builds a join node over two subtrees, estimating output
// cardinality as |L|·|R|·∏(selectivities of join-graph edges crossing the
// two sides). It returns an error when no edge crosses the sides (a cross
// product) or when the sides overlap.
func NewJoin(s *catalog.Schema, algo JoinAlgo, left, right *Node) (*Node, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("plan: nil join input")
	}
	rels, err := mergeRelsInto(make([]string, 0, len(left.rels)+len(right.rels)), left.rels, right.rels)
	if err != nil {
		return nil, fmt.Errorf("plan: relations of %v and %v: %w", left.rels, right.rels, err)
	}
	rows, bytes, err := joinStats(s, left, right)
	if err != nil {
		return nil, fmt.Errorf("plan: cross product between %v and %v: %w", left.rels, right.rels, err)
	}
	return &Node{
		Algo:  algo,
		Left:  left,
		Right: right,
		rows:  rows,
		bytes: bytes,
		rels:  rels,
	}, nil
}

// joinStats estimates the output cardinality and size of joining two
// subtrees: |L|·|R|·∏(selectivities of join-graph edges crossing the two
// sides). It returns ErrCrossProduct when no edge crosses the sides.
func joinStats(s *catalog.Schema, left, right *Node) (rows, bytes float64, err error) {
	sel := 1.0
	crossing := 0
	for _, a := range left.rels {
		for _, b := range right.rels {
			if es, ok := s.Selectivity(a, b); ok {
				sel *= es
				crossing++
			}
		}
	}
	if crossing == 0 {
		return 0, 0, ErrCrossProduct
	}
	rows = left.rows * right.rows * sel
	if rows < 1 {
		rows = 1
	}
	var width float64
	if left.rows > 0 && right.rows > 0 {
		width = left.bytes/left.rows + right.bytes/right.rows
	}
	return rows, rows * width, nil
}

// mergeRelsInto merges two sorted, disjoint relation lists into dst
// (typically dst[:0] of a reused buffer), returning ErrOverlap when the
// sides share a relation.
func mergeRelsInto(dst []string, a, b []string) ([]string, error) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return nil, ErrOverlap
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst, nil
}

// Joinable reports whether any relation covered by a is joinable (shares a
// join-graph edge) with any relation covered by b — without allocating, in
// contrast to walking the copies Relations returns.
func Joinable(s *catalog.Schema, a, b *Node) bool {
	for _, x := range a.rels {
		for _, y := range b.rels {
			if s.Joinable(x, y) {
				return true
			}
		}
	}
	return false
}

// IsScan reports whether the node is a table scan.
func (n *Node) IsScan() bool { return n.Table != "" }

// Rows returns the estimated output cardinality.
func (n *Node) Rows() float64 { return n.rows }

// Bytes returns the estimated output size. The internal estimate is kept
// as float64 for the cost model; the exported accessor speaks units.Bytes
// so callers cannot confuse it with a GB-denominated figure.
func (n *Node) Bytes() units.Bytes { return units.Bytes(n.bytes) }

// OutputGB returns the estimated output size in GB.
func (n *Node) OutputGB() float64 { return n.bytes / float64(units.GB) }

// Relations returns the sorted relations covered by the subtree.
func (n *Node) Relations() []string {
	out := make([]string, len(n.rels))
	copy(out, n.rels)
	return out
}

// SmallerInputGB returns the size in GB of the smaller join input — the
// "ss" feature of the paper's cost model — and is only meaningful on join
// nodes.
func (n *Node) SmallerInputGB() float64 {
	if n.IsScan() {
		return 0
	}
	l, r := n.Left.bytes, n.Right.bytes
	if l < r {
		return l / float64(units.GB)
	}
	return r / float64(units.GB)
}

// LargerInputGB returns the size in GB of the larger join input.
func (n *Node) LargerInputGB() float64 {
	if n.IsScan() {
		return 0
	}
	l, r := n.Left.bytes, n.Right.bytes
	if l > r {
		return l / float64(units.GB)
	}
	return r / float64(units.GB)
}

// Joins appends all join nodes of the subtree in post-order (children before
// parents) — the order in which stages execute.
func (n *Node) Joins() []*Node { return n.AppendJoins(nil) }

// AppendJoins appends the subtree's join nodes to dst in post-order and
// returns the extended slice. Passing a reused buffer (dst[:0]) makes the
// walk allocation-free — the hot-path form of Joins.
func (n *Node) AppendJoins(dst []*Node) []*Node {
	if n == nil || n.IsScan() {
		return dst
	}
	dst = n.Left.AppendJoins(dst)
	dst = n.Right.AppendJoins(dst)
	return append(dst, n)
}

// Clone deep-copies the plan tree, including resource annotations. Cached
// signatures carry over: the clone has the same shape, and the resource
// signature stays fingerprint-guarded.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Table: n.Table,
		Algo:  n.Algo,
		Res:   n.Res,
		rows:  n.rows,
		bytes: n.bytes,
	}
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	rels := make([]string, len(n.rels))
	copy(rels, n.rels)
	c.rels = rels
	c.sig.Store(n.sig.Load())
	c.sigRes.Store(n.sigRes.Load())
	return c
}

// Signature returns a canonical string identifying the plan's logical and
// physical shape (join order + operator implementations), ignoring resource
// annotations. Two plans with equal signatures are the same plan.
//
// The string is computed once per node (shape is immutable after
// construction) and interned, so repeated calls on hot paths neither
// rebuild nor re-allocate it.
func (n *Node) Signature() string {
	if p := n.sig.Load(); p != nil {
		return *p
	}
	var b strings.Builder
	n.writeSig(&b, false)
	s := intern.String(b.String())
	n.sig.Store(&s)
	return s
}

// SignatureWithResources is Signature but also distinguishing the resource
// annotations, used by tests and the adaptive re-optimizer.
//
// The string is cached against a fingerprint of the subtree's resource
// annotations: re-annotating any operator (the one mutable field of a
// node) invalidates the cache, while repeated calls on an unchanged plan
// return the interned string without rebuilding it.
func (n *Node) SignatureWithResources() string {
	fp := n.resFingerprint(14695981039346656037)
	if p := n.sigRes.Load(); p != nil && p.fp == fp {
		return p.s
	}
	var b strings.Builder
	n.writeSig(&b, true)
	s := intern.String(b.String())
	n.sigRes.Store(&resSignature{fp: fp, s: s})
	return s
}

// resFingerprint folds the subtree's resource annotations (and enough
// shape to anchor them to positions) into an FNV-1a hash.
//
//raqo:noalloc
func (n *Node) resFingerprint(h uint64) uint64 {
	const prime = 1099511628211
	if n == nil {
		return (h ^ 0x2e) * prime
	}
	if n.IsScan() {
		h = (h ^ 0x73) * prime
		return h
	}
	h = (h ^ uint64(n.Algo) ^ 0x4a) * prime
	h = mix64(h, uint64(n.Res.Containers))
	h = mix64(h, floatBits(n.Res.ContainerGB))
	h = n.Left.resFingerprint(h)
	h = n.Right.resFingerprint(h)
	return h
}

//raqo:noalloc
func floatBits(f float64) uint64 { return math.Float64bits(f) }

//raqo:noalloc
func mix64(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xff)) * prime
	}
	return h
}

func (n *Node) writeSig(b *strings.Builder, withRes bool) {
	if n.IsScan() {
		b.WriteString(n.Table)
		return
	}
	b.WriteString(n.Algo.String())
	if withRes && !n.Res.IsZero() {
		b.WriteByte('@')
		b.WriteString(strconv.Itoa(n.Res.Containers))
		b.WriteByte('x')
		b.WriteString(strconv.FormatFloat(n.Res.ContainerGB, 'f', -1, 64))
		b.WriteString("GB")
	}
	b.WriteByte('(')
	n.Left.writeSig(b, withRes)
	b.WriteByte(',')
	n.Right.writeSig(b, withRes)
	b.WriteByte(')')
}

// String renders the plan as a multi-line, indented operator tree.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsScan() {
		fmt.Fprintf(b, "%sScan(%s) rows=%.0f size=%s\n", indent, n.Table, n.rows, units.Bytes(n.bytes))
		return
	}
	fmt.Fprintf(b, "%s%s [%s] rows=%.0f size=%s\n", indent, n.Algo, n.Res, n.rows, units.Bytes(n.bytes))
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
}

// Validate checks structural invariants of the plan against a query: it
// must cover exactly the query's relations, every join must be edge-backed,
// and no relation may repeat. Statistics consistency is implied by
// construction; Validate exists to catch hand-built or mutated trees.
func (n *Node) Validate(q *Query) error {
	if n == nil {
		return fmt.Errorf("plan: nil plan")
	}
	got := n.Relations()
	if len(got) != len(q.Rels) {
		return fmt.Errorf("plan: covers %d relations, query has %d", len(got), len(q.Rels))
	}
	for i := range got {
		if got[i] != q.Rels[i] {
			return fmt.Errorf("plan: covers %v, query wants %v", got, q.Rels)
		}
	}
	var walk func(m *Node) error
	walk = func(m *Node) error {
		if m.IsScan() {
			if _, ok := q.Schema.Table(m.Table); !ok {
				return fmt.Errorf("plan: scan of unknown table %q", m.Table)
			}
			return nil
		}
		if m.Left == nil || m.Right == nil {
			return fmt.Errorf("plan: join with missing input")
		}
		crossing := false
		for _, a := range m.Left.rels {
			for _, b := range m.Right.rels {
				if q.Schema.Joinable(a, b) {
					crossing = true
				}
			}
		}
		if !crossing {
			return fmt.Errorf("plan: cross product between %v and %v", m.Left.rels, m.Right.rels)
		}
		if err := walk(m.Left); err != nil {
			return err
		}
		return walk(m.Right)
	}
	return walk(n)
}

// LeftDeep builds a left-deep plan joining the given relations in order with
// the given algorithm at every join. It is a convenience for tests,
// examples, and the Selinger planner's plan materialization.
func LeftDeep(s *catalog.Schema, algo JoinAlgo, rels ...string) (*Node, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("plan: no relations")
	}
	cur, err := NewScan(s, rels[0])
	if err != nil {
		return nil, err
	}
	for _, r := range rels[1:] {
		leaf, err := NewScan(s, r)
		if err != nil {
			return nil, err
		}
		cur, err = NewJoin(s, algo, cur, leaf)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}
