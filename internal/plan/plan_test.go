package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"raqo/internal/catalog"
)

func tpch(t *testing.T) *catalog.Schema {
	t.Helper()
	return catalog.TPCH(100)
}

func TestNewQueryValidation(t *testing.T) {
	s := tpch(t)
	if _, err := NewQuery(nil, catalog.Orders); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewQuery(s); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := NewQuery(s, "ghost"); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := NewQuery(s, catalog.Orders, catalog.Orders); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := NewQuery(s, catalog.Customer, catalog.Part); err == nil {
		t.Error("disconnected query accepted")
	}
	q, err := NewQuery(s, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumJoins() != 2 {
		t.Errorf("NumJoins = %d, want 2", q.NumJoins())
	}
	if q.Index(catalog.Orders) < 0 || q.Index("ghost") != -1 {
		t.Error("Index lookup broken")
	}
}

func TestScanStats(t *testing.T) {
	s := tpch(t)
	n, err := NewScan(s, catalog.Orders)
	if err != nil {
		t.Fatal(err)
	}
	tab := s.MustTable(catalog.Orders)
	if n.Rows() != float64(tab.Rows) {
		t.Errorf("rows = %v, want %v", n.Rows(), tab.Rows)
	}
	if n.Bytes() != tab.Size() {
		t.Errorf("bytes = %v, want %v", n.Bytes(), tab.Size())
	}
	if !n.IsScan() {
		t.Error("scan not recognized")
	}
	if _, err := NewScan(s, "ghost"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestJoinCardinalityPKFK(t *testing.T) {
	s := tpch(t)
	li, _ := NewScan(s, catalog.Lineitem)
	o, _ := NewScan(s, catalog.Orders)
	j, err := NewJoin(s, SMJ, li, o)
	if err != nil {
		t.Fatal(err)
	}
	// PK-FK join returns FK side cardinality.
	if math.Abs(j.Rows()-li.Rows()) > 1 {
		t.Errorf("lineitem⋈orders rows = %v, want %v", j.Rows(), li.Rows())
	}
	// Output width = sum of input widths.
	wantWidth := 128.0 + 110.0
	gotWidth := float64(j.Bytes()) / j.Rows()
	if math.Abs(gotWidth-wantWidth) > 1e-6 {
		t.Errorf("output width = %v, want %v", gotWidth, wantWidth)
	}
}

func TestJoinCardinalityCommutative(t *testing.T) {
	s := tpch(t)
	li, _ := NewScan(s, catalog.Lineitem)
	o, _ := NewScan(s, catalog.Orders)
	ab, err := NewJoin(s, SMJ, li, o)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewJoin(s, BHJ, o, li)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Rows() != ba.Rows() || ab.Bytes() != ba.Bytes() {
		t.Error("join estimation not commutative")
	}
}

func TestJoinErrors(t *testing.T) {
	s := tpch(t)
	c, _ := NewScan(s, catalog.Customer)
	p, _ := NewScan(s, catalog.Part)
	if _, err := NewJoin(s, SMJ, c, p); err == nil {
		t.Error("cross product accepted")
	}
	if _, err := NewJoin(s, SMJ, nil, p); err == nil {
		t.Error("nil input accepted")
	}
	c2, _ := NewScan(s, catalog.Customer)
	if _, err := NewJoin(s, SMJ, c, c2); err == nil {
		t.Error("overlapping sides accepted")
	}
}

func TestSmallerLargerInput(t *testing.T) {
	s := tpch(t)
	li, _ := NewScan(s, catalog.Lineitem)
	o, _ := NewScan(s, catalog.Orders)
	j, _ := NewJoin(s, BHJ, li, o)
	if j.SmallerInputGB() >= j.LargerInputGB() {
		t.Error("smaller >= larger")
	}
	if math.Abs(j.SmallerInputGB()-o.OutputGB()) > 1e-9 {
		t.Errorf("smaller input = %v, want orders %v", j.SmallerInputGB(), o.OutputGB())
	}
	if li.SmallerInputGB() != 0 || li.LargerInputGB() != 0 {
		t.Error("scan input sizes should be 0")
	}
}

func TestLeftDeepAndJoins(t *testing.T) {
	s := tpch(t)
	p, err := LeftDeep(s, SMJ, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err != nil {
		t.Fatal(err)
	}
	joins := p.Joins()
	if len(joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(joins))
	}
	// Post-order: bottom join first.
	if len(joins[0].Relations()) != 2 || len(joins[1].Relations()) != 3 {
		t.Error("Joins() not post-order")
	}
	q, _ := NewQuery(s, catalog.Lineitem, catalog.Orders, catalog.Customer)
	if err := p.Validate(q); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// Wrong coverage.
	q2, _ := NewQuery(s, catalog.Lineitem, catalog.Orders)
	if err := p.Validate(q2); err == nil {
		t.Error("over-covering plan accepted")
	}
}

func TestLeftDeepErrors(t *testing.T) {
	s := tpch(t)
	if _, err := LeftDeep(s, SMJ); err == nil {
		t.Error("no relations accepted")
	}
	if _, err := LeftDeep(s, SMJ, catalog.Customer, catalog.Part); err == nil {
		t.Error("cross product order accepted")
	}
}

func TestSignature(t *testing.T) {
	s := tpch(t)
	p1, _ := LeftDeep(s, SMJ, catalog.Lineitem, catalog.Orders)
	p2, _ := LeftDeep(s, SMJ, catalog.Lineitem, catalog.Orders)
	p3, _ := LeftDeep(s, BHJ, catalog.Lineitem, catalog.Orders)
	p4, _ := LeftDeep(s, SMJ, catalog.Orders, catalog.Lineitem)
	if p1.Signature() != p2.Signature() {
		t.Error("identical plans have different signatures")
	}
	if p1.Signature() == p3.Signature() {
		t.Error("different algos share signature")
	}
	if p1.Signature() == p4.Signature() {
		t.Error("different orders share signature")
	}
	// Resources only show up in SignatureWithResources.
	p2.Res = Resources{Containers: 10, ContainerGB: 3}
	if p1.Signature() != p2.Signature() {
		t.Error("Signature should ignore resources")
	}
	if p1.SignatureWithResources() == p2.SignatureWithResources() {
		t.Error("SignatureWithResources should include resources")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := tpch(t)
	p, _ := LeftDeep(s, SMJ, catalog.Lineitem, catalog.Orders, catalog.Customer)
	c := p.Clone()
	c.Res = Resources{Containers: 5, ContainerGB: 2}
	c.Left.Algo = BHJ
	if p.Res == c.Res {
		t.Error("clone shares Res")
	}
	if p.Left.Algo == BHJ {
		t.Error("clone shares children")
	}
	if p.Signature() == c.Signature() {
		t.Error("mutated clone should differ")
	}
}

func TestStringRendering(t *testing.T) {
	s := tpch(t)
	p, _ := LeftDeep(s, BHJ, catalog.Lineitem, catalog.Orders)
	p.Res = Resources{Containers: 10, ContainerGB: 3}
	out := p.String()
	for _, want := range []string{"BHJ", "10x3GB", "Scan(lineitem)", "Scan(orders)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestResourcesString(t *testing.T) {
	if got := (Resources{}).String(); got != "unplanned" {
		t.Errorf("zero Resources = %q", got)
	}
	if got := (Resources{Containers: 40, ContainerGB: 9}).String(); got != "40x9GB" {
		t.Errorf("Resources = %q", got)
	}
	if got := (Resources{Containers: 4, ContainerGB: 2.5}).TotalGB(); got != 10 {
		t.Errorf("TotalGB = %v", got)
	}
}

// Property: for random left-deep orders over a random schema, cardinality
// estimates are positive and total relations covered equal the query size.
func TestRandomLeftDeepProperty(t *testing.T) {
	cfg := catalog.DefaultRandomConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := catalog.Random(rng, 8, cfg)
		if err != nil {
			return false
		}
		// Build a connected order by greedy expansion from a random start.
		tables := s.Tables()
		order := []string{tables[rng.Intn(len(tables))]}
		in := map[string]bool{order[0]: true}
		for len(order) < len(tables) {
			var cands []string
			for _, have := range order {
				for _, n := range s.Neighbors(have) {
					if !in[n] {
						cands = append(cands, n)
					}
				}
			}
			if len(cands) == 0 {
				return false
			}
			pick := cands[rng.Intn(len(cands))]
			in[pick] = true
			order = append(order, pick)
		}
		p, err := LeftDeep(s, SMJ, order...)
		if err != nil {
			return false
		}
		if len(p.Relations()) != len(tables) {
			return false
		}
		for _, j := range p.Joins() {
			if j.Rows() < 1 || j.Bytes() < 0 {
				return false
			}
			if j.SmallerInputGB() > j.LargerInputGB() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
