package plan

import (
	"strings"
	"testing"

	"raqo/internal/catalog"
)

// sigSchema builds a three-table chain a—b—c for signature tests.
func sigSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	for _, tb := range []catalog.Table{
		{Name: "a", Rows: 1000, RowBytes: 100},
		{Name: "b", Rows: 2000, RowBytes: 50},
		{Name: "c", Rows: 3000, RowBytes: 20},
	} {
		if err := s.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddJoin("a", "b", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJoin("b", "c", 0.001); err != nil {
		t.Fatal(err)
	}
	return s
}

func sigTree(t *testing.T) *Node {
	t.Helper()
	n, err := LeftDeep(sigSchema(t), SMJ, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSignatureCachedStable: repeated calls return the same (interned)
// string and agree with a fresh identically-shaped tree.
func TestSignatureCachedStable(t *testing.T) {
	n := sigTree(t)
	first := n.Signature()
	if again := n.Signature(); again != first {
		t.Fatalf("Signature changed between calls: %q vs %q", again, first)
	}
	if other := sigTree(t).Signature(); other != first {
		t.Fatalf("same shape, different signature: %q vs %q", other, first)
	}
	if !strings.Contains(first, "SMJ") || !strings.Contains(first, "a") {
		t.Fatalf("implausible signature %q", first)
	}
}

// TestSignatureWithResourcesInvalidatedOnMutation: mutating an operator's
// resource annotation after a signature was computed must produce a new,
// different signature (the one mutable field is the one the cache guards).
func TestSignatureWithResourcesInvalidatedOnMutation(t *testing.T) {
	n := sigTree(t)
	for _, j := range n.Joins() {
		j.Res = Resources{Containers: 10, ContainerGB: 3}
	}
	before := n.SignatureWithResources()
	if again := n.SignatureWithResources(); again != before {
		t.Fatalf("cached signature unstable: %q vs %q", again, before)
	}

	// Mutate a deep operator, not the root: the root's cached signature
	// must still notice.
	n.Left.Res = Resources{Containers: 40, ContainerGB: 6}
	after := n.SignatureWithResources()
	if after == before {
		t.Fatalf("signature did not change after Res mutation: %q", after)
	}
	if !strings.Contains(after, "40x6GB") {
		t.Fatalf("signature %q does not reflect the new annotation", after)
	}

	// Mutating back restores the original signature text.
	n.Left.Res = Resources{Containers: 10, ContainerGB: 3}
	if restored := n.SignatureWithResources(); restored != before {
		t.Fatalf("signature did not round-trip: %q vs %q", restored, before)
	}
}

// TestSignatureSameShapeDifferentResources: the shape signature must not
// distinguish resource annotations, while the resource signature must.
func TestSignatureSameShapeDifferentResources(t *testing.T) {
	x, y := sigTree(t), sigTree(t)
	for _, j := range x.Joins() {
		j.Res = Resources{Containers: 10, ContainerGB: 3}
	}
	for _, j := range y.Joins() {
		j.Res = Resources{Containers: 80, ContainerGB: 9}
	}
	if x.Signature() != y.Signature() {
		t.Fatalf("shape signatures differ for identical shapes: %q vs %q", x.Signature(), y.Signature())
	}
	if x.SignatureWithResources() == y.SignatureWithResources() {
		t.Fatalf("resource signatures collide across different annotations: %q", x.SignatureWithResources())
	}
}

// TestSignatureFractionalGB: close fractional container sizes must not
// collide (the formatter is exact, not rounded-to-integer).
func TestSignatureFractionalGB(t *testing.T) {
	x, y := sigTree(t), sigTree(t)
	for _, j := range x.Joins() {
		j.Res = Resources{Containers: 10, ContainerGB: 2.5}
	}
	for _, j := range y.Joins() {
		j.Res = Resources{Containers: 10, ContainerGB: 2.4}
	}
	if x.SignatureWithResources() == y.SignatureWithResources() {
		t.Fatalf("2.5GB and 2.4GB collide: %q", x.SignatureWithResources())
	}
}

// TestCloneCarriesSignatures: a clone is an equal plan, and mutating the
// clone's annotations must not disturb the original's signature.
func TestCloneCarriesSignatures(t *testing.T) {
	n := sigTree(t)
	for _, j := range n.Joins() {
		j.Res = Resources{Containers: 10, ContainerGB: 3}
	}
	orig := n.SignatureWithResources()
	c := n.Clone()
	if c.SignatureWithResources() != orig {
		t.Fatalf("clone signature differs: %q vs %q", c.SignatureWithResources(), orig)
	}
	c.Res = Resources{Containers: 99, ContainerGB: 9}
	if c.SignatureWithResources() == orig {
		t.Fatal("clone mutation did not change its signature")
	}
	if n.SignatureWithResources() != orig {
		t.Fatal("mutating the clone disturbed the original's signature")
	}
}

// TestArenaMatchesNew: arena-built plans are statistically identical to
// heap-built ones, and reset recycling reuses storage without leaking
// state into the next query.
func TestArenaMatchesNew(t *testing.T) {
	s := sigSchema(t)
	var a Arena
	for round := 0; round < 3; round++ {
		la, err := a.Scan(s, "a")
		if err != nil {
			t.Fatal(err)
		}
		lb, err := a.Scan(s, "b")
		if err != nil {
			t.Fatal(err)
		}
		j, err := a.Join(s, BHJ, la, lb)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := LeftDeep(s, BHJ, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if j.Rows() != ref.Rows() || j.Bytes() != ref.Bytes() {
			t.Fatalf("round %d: arena stats (%v rows, %v) != NewJoin stats (%v rows, %v)",
				round, j.Rows(), j.Bytes(), ref.Rows(), ref.Bytes())
		}
		if j.Signature() != ref.Signature() {
			t.Fatalf("round %d: arena signature %q != %q", round, j.Signature(), ref.Signature())
		}
		a.Reset()
	}
}

// TestArenaRejectsBadJoins: the sentinel error paths.
func TestArenaRejectsBadJoins(t *testing.T) {
	s := sigSchema(t)
	var a Arena
	la, _ := a.Scan(s, "a")
	lc, _ := a.Scan(s, "c")
	if _, err := a.Join(s, SMJ, la, lc); err != ErrCrossProduct {
		t.Fatalf("cross product err = %v, want ErrCrossProduct", err)
	}
	la2, _ := a.Scan(s, "a")
	if _, err := a.Join(s, SMJ, la, la2); err != ErrOverlap {
		t.Fatalf("overlap err = %v, want ErrOverlap", err)
	}
}

// TestJoinScratchReuse: successive scratch joins reuse one node and stay
// equivalent to NewJoin, including signature invalidation across reuses.
func TestJoinScratchReuse(t *testing.T) {
	s := sigSchema(t)
	la, _ := NewScan(s, "a")
	lb, _ := NewScan(s, "b")
	lc, _ := NewScan(s, "c")

	var sc JoinScratch
	j1, err := sc.Join(s, SMJ, la, lb)
	if err != nil {
		t.Fatal(err)
	}
	sig1 := j1.Signature()
	j2, err := sc.Join(s, BHJ, lb, lc)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("scratch should reuse one node")
	}
	ref, err := NewJoin(s, BHJ, lb, lc)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Signature() != ref.Signature() || j2.Rows() != ref.Rows() {
		t.Fatalf("scratch join diverges from NewJoin: %q vs %q", j2.Signature(), ref.Signature())
	}
	if j2.Signature() == sig1 {
		t.Fatal("stale cached signature survived scratch reuse")
	}
}

// TestAppendJoinsMatchesJoins: the buffer-reusing walk yields the same
// nodes in the same order.
func TestAppendJoinsMatchesJoins(t *testing.T) {
	n := sigTree(t)
	a := n.Joins()
	buf := make([]*Node, 0, 4)
	b := n.AppendJoins(buf[:0])
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}
