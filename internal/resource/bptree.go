package resource

import (
	"math"
	"sort"

	"raqo/internal/plan"
)

// bpTree is a B+ tree over float64 data-characteristic keys — the
// "CSB+-Tree for larger workloads" layout the paper suggests for the
// resource-plan cache. Leaves are chained in both directions so the
// nearest-neighbor and threshold-scan probes of the cache stay O(log n + k).
type bpTree struct {
	root  *bpNode
	first *bpNode // leftmost leaf
	count int
}

// bpOrder is the fan-out; leaves hold up to bpOrder entries.
const bpOrder = 32

type bpNode struct {
	leaf bool

	// keys: separators for internal nodes (len(kids) == len(keys)+1) or
	// entry keys for leaves.
	keys []float64
	vals []plan.Resources // leaves only
	kids []*bpNode        // internal only

	next, prev *bpNode // leaf chain
}

func newBPTree() *bpTree {
	leaf := &bpNode{leaf: true}
	return &bpTree{root: leaf, first: leaf}
}

func (t *bpTree) size() int { return t.count }

// findLeaf descends to the leaf that should contain key.
func (t *bpTree) findLeaf(key float64) *bpNode {
	n := t.root
	for !n.leaf {
		i := sort.SearchFloat64s(n.keys, key)
		// keys[i-1] <= key < keys[i] routes to kids[i]; SearchFloat64s
		// returns the first separator > key... it returns first index with
		// keys[i] >= key, so equal keys route right by bumping.
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.kids[i]
	}
	return n
}

func (t *bpTree) insert(key float64, val plan.Resources) {
	leaf := t.findLeaf(key)
	i := sort.SearchFloat64s(leaf.keys, key)
	if i < len(leaf.keys) && math.Abs(leaf.keys[i]-key) <= exactEps {
		leaf.vals[i] = val
		return
	}
	// Also check the boundary with the previous leaf for float-noise
	// duplicates.
	if i == 0 && leaf.prev != nil {
		p := leaf.prev
		if len(p.keys) > 0 && math.Abs(p.keys[len(p.keys)-1]-key) <= exactEps {
			p.vals[len(p.vals)-1] = val
			return
		}
	}
	leaf.keys = append(leaf.keys, 0)
	leaf.vals = append(leaf.vals, plan.Resources{})
	copy(leaf.keys[i+1:], leaf.keys[i:])
	copy(leaf.vals[i+1:], leaf.vals[i:])
	leaf.keys[i] = key
	leaf.vals[i] = val
	t.count++
	if len(leaf.keys) > bpOrder {
		t.splitLeaf(leaf)
	}
}

// splitLeaf splits an overfull leaf and propagates splits upward. Parents
// are located by re-descending from the root (simpler than parent
// pointers; depth is O(log n)).
func (t *bpTree) splitLeaf(leaf *bpNode) {
	mid := len(leaf.keys) / 2
	right := &bpNode{
		leaf: true,
		keys: append([]float64(nil), leaf.keys[mid:]...),
		vals: append([]plan.Resources(nil), leaf.vals[mid:]...),
		next: leaf.next,
		prev: leaf,
	}
	leaf.keys = leaf.keys[:mid]
	leaf.vals = leaf.vals[:mid]
	if right.next != nil {
		right.next.prev = right
	}
	leaf.next = right
	t.insertIntoParent(leaf, right.keys[0], right)
}

func (t *bpTree) insertIntoParent(left *bpNode, sep float64, right *bpNode) {
	if left == t.root {
		t.root = &bpNode{keys: []float64{sep}, kids: []*bpNode{left, right}}
		return
	}
	parent := t.parentOf(t.root, left)
	i := 0
	for ; i < len(parent.kids); i++ {
		if parent.kids[i] == left {
			break
		}
	}
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.kids = append(parent.kids, nil)
	copy(parent.kids[i+2:], parent.kids[i+1:])
	parent.kids[i+1] = right
	if len(parent.kids) > bpOrder {
		t.splitInternal(parent)
	}
}

func (t *bpTree) splitInternal(n *bpNode) {
	midKey := len(n.keys) / 2
	sep := n.keys[midKey]
	right := &bpNode{
		keys: append([]float64(nil), n.keys[midKey+1:]...),
		kids: append([]*bpNode(nil), n.kids[midKey+1:]...),
	}
	n.keys = n.keys[:midKey]
	n.kids = n.kids[:midKey+1]
	t.insertIntoParent(n, sep, right)
}

// parentOf finds the parent of target below cur; cur must be an ancestor.
func (t *bpTree) parentOf(cur, target *bpNode) *bpNode {
	if cur.leaf {
		return nil
	}
	for _, k := range cur.kids {
		if k == target {
			return cur
		}
	}
	// Descend along the path to the target's first key (or any key; all of
	// the target's keys share the same routing in an ancestor).
	key := routeKey(target)
	i := sort.SearchFloat64s(cur.keys, key)
	if i < len(cur.keys) && cur.keys[i] == key {
		i++
	}
	return t.parentOf(cur.kids[i], target)
}

func routeKey(n *bpNode) float64 {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0]
}

func (t *bpTree) exact(key float64) (plan.Resources, bool) {
	leaf := t.findLeaf(key)
	i := sort.SearchFloat64s(leaf.keys, key)
	if i < len(leaf.keys) && math.Abs(leaf.keys[i]-key) <= exactEps {
		return leaf.vals[i], true
	}
	if i > 0 && math.Abs(leaf.keys[i-1]-key) <= exactEps {
		return leaf.vals[i-1], true
	}
	if i == 0 && leaf.prev != nil {
		p := leaf.prev
		if len(p.keys) > 0 && math.Abs(p.keys[len(p.keys)-1]-key) <= exactEps {
			return p.vals[len(p.vals)-1], true
		}
	}
	return plan.Resources{}, false
}

func (t *bpTree) nearest(key float64) (entryKV, bool) {
	if t.count == 0 {
		return entryKV{}, false
	}
	leaf := t.findLeaf(key)
	i := sort.SearchFloat64s(leaf.keys, key)
	best, ok := entryKV{}, false
	consider := func(l *bpNode, j int) {
		if l == nil || j < 0 || j >= len(l.keys) {
			return
		}
		if !ok || math.Abs(l.keys[j]-key) < math.Abs(best.key-key) {
			best = entryKV{key: l.keys[j], val: l.vals[j]}
			ok = true
		}
	}
	// Predecessor first, matching the sorted-array tie-break (the smaller
	// key wins on equal distance).
	consider(leaf, i-1)
	if i == 0 && leaf.prev != nil {
		consider(leaf.prev, len(leaf.prev.keys)-1)
	}
	consider(leaf, i)
	if i >= len(leaf.keys) && leaf.next != nil {
		consider(leaf.next, 0)
	}
	return best, ok
}

func (t *bpTree) neighbors(key, threshold float64) []entryKV {
	var out []entryKV
	leaf := t.findLeaf(key)
	i := sort.SearchFloat64s(leaf.keys, key)
	// Walk left from position i-1 across the leaf chain.
	l, j := leaf, i-1
	for l != nil {
		if j < 0 {
			l = l.prev
			if l != nil {
				j = len(l.keys) - 1
			}
			continue
		}
		if key-l.keys[j] > threshold {
			break
		}
		out = append(out, entryKV{key: l.keys[j], val: l.vals[j]})
		j--
	}
	// Walk right from position i.
	l, j = leaf, i
	for l != nil {
		if j >= len(l.keys) {
			l = l.next
			j = 0
			continue
		}
		if l.keys[j]-key > threshold {
			break
		}
		out = append(out, entryKV{key: l.keys[j], val: l.vals[j]})
		j++
	}
	return out
}

var _ keyIndex = (*bpTree)(nil)
