package resource

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"raqo/internal/cluster"
	"raqo/internal/plan"
)

func res(n int) plan.Resources { return plan.Resources{Containers: n, ContainerGB: 1} }

func TestBPTreeInsertAndExact(t *testing.T) {
	tr := newBPTree()
	for i := 0; i < 500; i++ {
		tr.insert(float64(i)*0.5, res(i))
	}
	if tr.size() != 500 {
		t.Fatalf("size = %d", tr.size())
	}
	for i := 0; i < 500; i++ {
		v, ok := tr.exact(float64(i) * 0.5)
		if !ok || v != res(i) {
			t.Fatalf("exact(%v) = %v, %v", float64(i)*0.5, v, ok)
		}
	}
	if _, ok := tr.exact(0.25); ok {
		t.Error("phantom exact hit")
	}
	// Overwrite.
	tr.insert(1.0, res(999))
	if v, _ := tr.exact(1.0); v != res(999) {
		t.Error("overwrite failed")
	}
	if tr.size() != 500 {
		t.Errorf("overwrite changed size to %d", tr.size())
	}
}

func TestBPTreeNearest(t *testing.T) {
	tr := newBPTree()
	keys := []float64{1, 3, 7, 20, 100}
	for i, k := range keys {
		tr.insert(k, res(i))
	}
	cases := []struct {
		probe float64
		want  float64
	}{
		{0, 1}, {1.9, 1}, {2.1, 3}, {5, 3}, {6, 7}, {50, 20}, {70, 100}, {1000, 100},
	}
	for _, c := range cases {
		e, ok := tr.nearest(c.probe)
		if !ok || e.key != c.want {
			t.Errorf("nearest(%v) = %v (ok=%v), want key %v", c.probe, e.key, ok, c.want)
		}
	}
	empty := newBPTree()
	if _, ok := empty.nearest(1); ok {
		t.Error("nearest on empty tree")
	}
}

func TestBPTreeNeighbors(t *testing.T) {
	tr := newBPTree()
	for i := 0; i < 200; i++ {
		tr.insert(float64(i), res(i))
	}
	got := tr.neighbors(100.2, 3)
	want := map[float64]bool{98: true, 99: true, 100: true, 101: true, 102: true, 103: true}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %d entries, want %d: %v", len(got), len(want), got)
	}
	for _, e := range got {
		if !want[e.key] {
			t.Errorf("unexpected neighbor %v", e.key)
		}
	}
}

// Property: the B+ tree and the sorted array answer every probe
// identically for random workloads.
func TestBPTreeMatchesArrayProperty(t *testing.T) {
	cond := cluster.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newBPTree()
		arr := &arrayIndex{}
		for i := 0; i < 300; i++ {
			k := math.Round(rng.Float64()*1000) / 100 // 0.00 .. 10.00
			v := res(rng.Intn(100) + 1)
			tr.insert(k, v)
			arr.insert(k, v)
		}
		if tr.size() != arr.size() {
			return false
		}
		for i := 0; i < 100; i++ {
			probe := rng.Float64() * 11
			for _, mode := range []LookupMode{Exact, NearestNeighbor, WeightedAverage} {
				for _, th := range []float64{0, 0.01, 0.5} {
					a, aok := lookup(arr, probe, mode, th, cond)
					b, bok := lookup(tr, probe, mode, th, cond)
					if aok != bok || a != b {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: leaf chain stays sorted and complete after random inserts.
func TestBPTreeLeafChainSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := newBPTree()
	inserted := map[float64]bool{}
	for i := 0; i < 5000; i++ {
		k := math.Round(rng.Float64()*1e6) / 100
		tr.insert(k, res(1))
		inserted[k] = true
	}
	var walked []float64
	for l := tr.first; l != nil; l = l.next {
		walked = append(walked, l.keys...)
	}
	if len(walked) != len(inserted) {
		t.Fatalf("leaf chain has %d keys, inserted %d", len(walked), len(inserted))
	}
	if !sort.Float64sAreSorted(walked) {
		t.Fatal("leaf chain not sorted")
	}
	// prev pointers mirror next pointers.
	var last *bpNode
	for l := tr.first; l != nil; l = l.next {
		if l.prev != last {
			t.Fatal("prev pointer broken")
		}
		last = l
	}
}

func TestCacheWithBPlusTreeIndex(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: NearestNeighbor, ThresholdGB: 0.5, Index: BPlusTree}
	m := quadModel(42, 7)
	r1, err := c.Plan(m, 3.0, cond())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Plan(m, 3.3, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || c.Hits() != 1 {
		t.Errorf("b+tree cache: %v vs %v, hits=%d", r1, r2, c.Hits())
	}
	if c.Size() != 1 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestIndexKindString(t *testing.T) {
	if SortedArray.String() != "sorted-array" || BPlusTree.String() != "b+tree" {
		t.Error("index kind names")
	}
}
