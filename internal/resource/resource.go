// Package resource implements the paper's Section VI-B resource planning:
// choosing a resource configuration (container count x container size) for
// one plan operator given a cost model and the current cluster conditions.
//
// Three planners are provided, matching the paper's evaluation:
//
//   - BruteForce exhaustively scans the discrete resource space.
//   - HillClimb is Algorithm 1: start from the smallest configuration and
//     greedily step along whichever dimension improves the modeled cost,
//     terminating at a local optimum (~4x fewer configurations explored).
//   - Cache wraps another planner with the resource-plan cache of Section
//     VI-B3: an in-memory sorted index from data characteristics to the
//     best known configuration, with exact, nearest-neighbor and
//     weighted-average lookups (another ~4x, up to ~10x on TPC-H All).
package resource

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"raqo/internal/cluster"
	"raqo/internal/cost"
	"raqo/internal/plan"
)

// Planner picks the resource configuration for one operator whose smaller
// input is ssGB, under the given cluster conditions, minimizing the cost
// model's prediction.
type Planner interface {
	Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error)
	// Evaluations returns the cumulative number of resource configurations
	// priced (the paper's "#Resource-Iterations" metric).
	Evaluations() int64
}

// BruteForce explores every configuration in the space.
type BruteForce struct {
	evals atomic.Int64
}

// Plan implements Planner.
func (b *BruteForce) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	if err := cond.Validate(); err != nil {
		return plan.Resources{}, err
	}
	best := plan.Resources{}
	bestCost := math.Inf(1)
	n := int64(0)
	cond.ForEach(func(r plan.Resources) bool {
		c := m.Cost(ssGB, r.ContainerGB, float64(r.Containers))
		n++
		if c < bestCost {
			bestCost, best = c, r
		}
		return true
	})
	b.evals.Add(n)
	if best.IsZero() {
		return plan.Resources{}, fmt.Errorf("resource: empty configuration space %v", cond)
	}
	return best, nil
}

// Evaluations implements Planner.
func (b *BruteForce) Evaluations() int64 { return b.evals.Load() }

// HillClimb is the paper's Algorithm 1. Start defaults to the minimum
// configuration ("given that the users want to minimize the resources used
// in modern cloud infrastructures ... start from the smallest resource
// configuration and then climb").
type HillClimb struct {
	// Start optionally overrides the climb's starting configuration (used
	// by the ablation benchmarks); when zero the cluster minimum is used.
	Start plan.Resources

	evals atomic.Int64
}

// Plan implements Planner, following Algorithm 1's control flow: in each
// round, for each resource dimension, try one step backward and one step
// forward (within cluster conditions), keep the best improving step, and
// stop when no step improves the current cost.
func (h *HillClimb) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	if err := cond.Validate(); err != nil {
		return plan.Resources{}, err
	}
	cur := h.Start
	if cur.IsZero() {
		cur = cond.MinResources()
	}
	cur = cond.Clamp(cur)
	evals := int64(0)
	eval := func(r plan.Resources) float64 {
		evals++
		return m.Cost(ssGB, r.ContainerGB, float64(r.Containers))
	}
	// dims: 0 = containers, 1 = container size.
	step := [2]float64{float64(cond.ContainerStep), cond.GBStep}
	get := func(r plan.Resources, i int) float64 {
		if i == 0 {
			return float64(r.Containers)
		}
		return r.ContainerGB
	}
	set := func(r plan.Resources, i int, v float64) plan.Resources {
		if i == 0 {
			r.Containers = int(math.Round(v))
		} else {
			r.ContainerGB = v
		}
		return r
	}
	lo := [2]float64{float64(cond.MinContainers), cond.MinContainerGB}
	hi := [2]float64{float64(cond.MaxContainers), cond.MaxContainerGB}
	candidate := [2]float64{-1, 1}

	for {
		curCost := eval(cur)
		bestCost := curCost
		for i := 0; i < 2; i++ {
			bestJ := -1
			for j := range candidate {
				v := get(cur, i) + step[i]*candidate[j]
				if v < lo[i]-1e-9 || v > hi[i]+1e-9 {
					continue
				}
				temp := eval(set(cur, i, v))
				if temp < bestCost {
					bestCost = temp
					bestJ = j
				}
			}
			if bestJ != -1 {
				cur = set(cur, i, get(cur, i)+step[i]*candidate[bestJ])
			}
		}
		if bestCost >= curCost {
			h.evals.Add(evals)
			return cur, nil // local optimum: no improving neighbor
		}
	}
}

// Evaluations implements Planner.
func (h *HillClimb) Evaluations() int64 { return h.evals.Load() }

// LookupMode selects the cache's matching policy.
type LookupMode int

// Cache lookup modes (Section VI-B3).
const (
	// Exact returns a hit only for identical data characteristics.
	Exact LookupMode = iota
	// NearestNeighbor returns the configuration of the closest key within
	// the threshold.
	NearestNeighbor
	// WeightedAverage blends the configurations of all keys within the
	// threshold, weighted by proximity, then snaps to the resource grid.
	WeightedAverage
)

// String names the mode.
func (m LookupMode) String() string {
	switch m {
	case Exact:
		return "exact"
	case NearestNeighbor:
		return "nearest-neighbor"
	case WeightedAverage:
		return "weighted-average"
	}
	return fmt.Sprintf("LookupMode(%d)", int(m))
}

// IndexKind selects the cache's index layout. The paper's prototype "keeps
// a sorted array of keys ... and we perform a binary search for lookup" and
// notes "we could also layout the array as a CSB+-Tree for larger
// workloads" — both are provided.
type IndexKind int

// Cache index layouts.
const (
	// SortedArray is the paper's prototype layout.
	SortedArray IndexKind = iota
	// BPlusTree is the CSB+-tree-style layout for larger workloads.
	BPlusTree
)

// String names the layout.
func (k IndexKind) String() string {
	switch k {
	case SortedArray:
		return "sorted-array"
	case BPlusTree:
		return "b+tree"
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// Cache wraps a Planner with the resource-plan cache: per cost model, an
// index of data-characteristic keys (smaller input size) pointing at the
// best known configuration. Safe for concurrent use.
type Cache struct {
	Inner Planner
	Mode  LookupMode
	// ThresholdGB is the data-delta threshold for NearestNeighbor and
	// WeightedAverage matches (the x-axis of Figure 14).
	ThresholdGB float64
	// Index selects the layout; the zero value is the paper's sorted
	// array.
	Index IndexKind

	mu      sync.Mutex
	indexes map[string]keyIndex // one index per cost-model name
	hits    atomic.Int64
	misses  atomic.Int64
}

// entryKV is one cached (data characteristic, configuration) pair.
type entryKV struct {
	key float64
	val plan.Resources
}

// keyIndex is the index layout abstraction: insert, exact probe, nearest
// key, and a threshold-bounded neighborhood scan.
type keyIndex interface {
	insert(key float64, val plan.Resources)
	exact(key float64) (plan.Resources, bool)
	nearest(key float64) (entryKV, bool)
	neighbors(key, threshold float64) []entryKV
	size() int
}

// exactEps treats keys closer than this as identical, absorbing float noise.
const exactEps = 1e-9

// arrayIndex is the paper's sorted-array layout with binary-search probes.
type arrayIndex struct {
	keys []float64
	vals []plan.Resources
}

func (ix *arrayIndex) size() int { return len(ix.keys) }

func (ix *arrayIndex) insert(key float64, val plan.Resources) {
	i := sort.SearchFloat64s(ix.keys, key)
	if i < len(ix.keys) && math.Abs(ix.keys[i]-key) <= exactEps {
		ix.vals[i] = val
		return
	}
	ix.keys = append(ix.keys, 0)
	ix.vals = append(ix.vals, plan.Resources{})
	copy(ix.keys[i+1:], ix.keys[i:])
	copy(ix.vals[i+1:], ix.vals[i:])
	ix.keys[i] = key
	ix.vals[i] = val
}

func (ix *arrayIndex) exact(key float64) (plan.Resources, bool) {
	i := sort.SearchFloat64s(ix.keys, key)
	for _, j := range []int{i, i - 1} {
		if j >= 0 && j < len(ix.keys) && math.Abs(ix.keys[j]-key) <= exactEps {
			return ix.vals[j], true
		}
	}
	return plan.Resources{}, false
}

func (ix *arrayIndex) nearest(key float64) (entryKV, bool) {
	if len(ix.keys) == 0 {
		return entryKV{}, false
	}
	i := sort.SearchFloat64s(ix.keys, key)
	bestJ, bestD := -1, math.Inf(1)
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(ix.keys) {
			continue
		}
		if d := math.Abs(ix.keys[j] - key); d < bestD {
			bestJ, bestD = j, d
		}
	}
	if bestJ < 0 {
		return entryKV{}, false
	}
	return entryKV{key: ix.keys[bestJ], val: ix.vals[bestJ]}, true
}

func (ix *arrayIndex) neighbors(key, threshold float64) []entryKV {
	i := sort.SearchFloat64s(ix.keys, key)
	var out []entryKV
	for j := i - 1; j >= 0 && key-ix.keys[j] <= threshold; j-- {
		out = append(out, entryKV{key: ix.keys[j], val: ix.vals[j]})
	}
	for j := i; j < len(ix.keys) && ix.keys[j]-key <= threshold; j++ {
		out = append(out, entryKV{key: ix.keys[j], val: ix.vals[j]})
	}
	return out
}

// lookup applies the cache mode on top of whichever index layout is in use.
func lookup(ix keyIndex, key float64, mode LookupMode, threshold float64, cond cluster.Conditions) (plan.Resources, bool) {
	// Exact match is honored in every mode.
	if v, ok := ix.exact(key); ok {
		return v, true
	}
	switch mode {
	case NearestNeighbor:
		if e, ok := ix.nearest(key); ok && math.Abs(e.key-key) <= threshold {
			return e.val, true
		}
	case WeightedAverage:
		var wSum, ncSum, gbSum float64
		for _, e := range ix.neighbors(key, threshold) {
			w := 1 / (math.Abs(e.key-key) + exactEps)
			wSum += w
			ncSum += w * float64(e.val.Containers)
			gbSum += w * e.val.ContainerGB
		}
		if wSum > 0 {
			r := plan.Resources{
				Containers:  int(math.Round(ncSum / wSum)),
				ContainerGB: gbSum / wSum,
			}
			return cond.Clamp(r), true
		}
	}
	return plan.Resources{}, false
}

// Plan implements Planner: look up the cache first; on a miss, run the
// inner planner and insert the result.
func (c *Cache) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	if c.Inner == nil {
		return plan.Resources{}, fmt.Errorf("resource: cache has no inner planner")
	}
	c.mu.Lock()
	if c.indexes == nil {
		c.indexes = make(map[string]keyIndex)
	}
	ix, ok := c.indexes[m.Name()]
	if !ok {
		if c.Index == BPlusTree {
			ix = newBPTree()
		} else {
			ix = &arrayIndex{}
		}
		c.indexes[m.Name()] = ix
	}
	if r, hit := lookup(ix, ssGB, c.Mode, c.ThresholdGB, cond); hit {
		c.mu.Unlock()
		c.hits.Add(1)
		// Across-query reuse can cross cluster-condition changes; snap the
		// cached configuration onto the current grid.
		return cond.Clamp(r), nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	r, err := c.Inner.Plan(m, ssGB, cond)
	if err != nil {
		return plan.Resources{}, err
	}
	c.mu.Lock()
	ix.insert(ssGB, r)
	c.mu.Unlock()
	return r, nil
}

// Evaluations implements Planner (delegates to the inner planner, so cache
// hits contribute zero).
func (c *Cache) Evaluations() int64 { return c.Inner.Evaluations() }

// Hits returns the number of cache hits so far.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses so far.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Reset clears every per-model index (the paper clears the cache before
// each query except in the across-query caching experiment, Fig 15b).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.indexes = nil
	c.mu.Unlock()
}

// Size returns the total number of cached entries across models.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ix := range c.indexes {
		n += ix.size()
	}
	return n
}
