// Package resource implements the paper's Section VI-B resource planning:
// choosing a resource configuration (container count x container size) for
// one plan operator given a cost model and the current cluster conditions.
//
// Three planners are provided, matching the paper's evaluation:
//
//   - BruteForce exhaustively scans the discrete resource space.
//   - HillClimb is Algorithm 1: start from the smallest configuration and
//     greedily step along whichever dimension improves the modeled cost,
//     terminating at a local optimum (~4x fewer configurations explored).
//   - Cache wraps another planner with the resource-plan cache of Section
//     VI-B3: an in-memory sorted index from data characteristics to the
//     best known configuration, with exact, nearest-neighbor and
//     weighted-average lookups (another ~4x, up to ~10x on TPC-H All).
package resource

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"raqo/internal/cluster"
	"raqo/internal/cost"
	"raqo/internal/plan"
)

// Planner picks the resource configuration for one operator whose smaller
// input is ssGB, under the given cluster conditions, minimizing the cost
// model's prediction.
type Planner interface {
	Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error)
	// Evaluations returns the cumulative number of resource configurations
	// priced (the paper's "#Resource-Iterations" metric).
	Evaluations() int64
}

// Counted is an optional Planner extension that additionally reports how
// many resource configurations one specific call priced. Evaluations() is a
// global cumulative counter, so attributing work to a single call via a
// before/after delta is a guess once calls run concurrently; PlanCounted
// makes the attribution exact. All planners in this package implement it.
type Counted interface {
	Planner
	PlanCounted(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, int64, error)
}

// PlanWithCount plans via PlanCounted when the planner supports it, and
// otherwise falls back to a Plan call bracketed by Evaluations deltas (exact
// only while the planner is not shared across concurrent calls).
func PlanWithCount(p Planner, m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, int64, error) {
	if cp, ok := p.(Counted); ok {
		return cp.PlanCounted(m, ssGB, cond)
	}
	before := p.Evaluations()
	r, err := p.Plan(m, ssGB, cond)
	return r, p.Evaluations() - before, err
}

// BruteForce explores every configuration in the space.
type BruteForce struct {
	evals atomic.Int64
}

// Plan implements Planner.
func (b *BruteForce) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	r, _, err := b.PlanCounted(m, ssGB, cond)
	return r, err
}

// PlanCounted implements Counted.
func (b *BruteForce) PlanCounted(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, int64, error) {
	if err := cond.Validate(); err != nil {
		return plan.Resources{}, 0, err
	}
	best := plan.Resources{}
	bestCost := math.Inf(1)
	n := int64(0)
	cond.ForEach(func(r plan.Resources) bool {
		c := m.Cost(ssGB, r.ContainerGB, float64(r.Containers))
		n++
		if c < bestCost {
			bestCost, best = c, r
		}
		return true
	})
	b.evals.Add(n)
	if best.IsZero() {
		return plan.Resources{}, n, fmt.Errorf("resource: empty configuration space %v", cond)
	}
	return best, n, nil
}

// Evaluations implements Planner.
func (b *BruteForce) Evaluations() int64 { return b.evals.Load() }

// HillClimb is the paper's Algorithm 1. Start defaults to the minimum
// configuration ("given that the users want to minimize the resources used
// in modern cloud infrastructures ... start from the smallest resource
// configuration and then climb").
type HillClimb struct {
	// Start optionally overrides the climb's starting configuration (used
	// by the ablation benchmarks); when zero the cluster minimum is used.
	Start plan.Resources

	evals atomic.Int64
}

// Plan implements Planner, following Algorithm 1's control flow: in each
// round, for each resource dimension, try one step backward and one step
// forward (within cluster conditions), keep the best improving step, and
// stop when no step improves the current cost.
func (h *HillClimb) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	r, _, err := h.PlanCounted(m, ssGB, cond)
	return r, err
}

// PlanCounted implements Counted.
func (h *HillClimb) PlanCounted(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, int64, error) {
	if err := cond.Validate(); err != nil {
		return plan.Resources{}, 0, err
	}
	cur := h.Start
	if cur.IsZero() {
		cur = cond.MinResources()
	}
	cur = cond.Clamp(cur)
	evals := int64(0)
	eval := func(r plan.Resources) float64 {
		evals++
		return m.Cost(ssGB, r.ContainerGB, float64(r.Containers))
	}
	// dims: 0 = containers, 1 = container size.
	step := [2]float64{float64(cond.ContainerStep), cond.GBStep}
	get := func(r plan.Resources, i int) float64 {
		if i == 0 {
			return float64(r.Containers)
		}
		return r.ContainerGB
	}
	set := func(r plan.Resources, i int, v float64) plan.Resources {
		if i == 0 {
			r.Containers = int(math.Round(v))
		} else {
			r.ContainerGB = v
		}
		return r
	}
	lo := [2]float64{float64(cond.MinContainers), cond.MinContainerGB}
	hi := [2]float64{float64(cond.MaxContainers), cond.MaxContainerGB}
	candidate := [2]float64{-1, 1}

	for {
		curCost := eval(cur)
		bestCost := curCost
		for i := 0; i < 2; i++ {
			bestJ := -1
			for j := range candidate {
				v := get(cur, i) + step[i]*candidate[j]
				if v < lo[i]-1e-9 || v > hi[i]+1e-9 {
					continue
				}
				temp := eval(set(cur, i, v))
				if temp < bestCost {
					bestCost = temp
					bestJ = j
				}
			}
			if bestJ != -1 {
				cur = set(cur, i, get(cur, i)+step[i]*candidate[bestJ])
			}
		}
		if bestCost >= curCost {
			h.evals.Add(evals)
			return cur, evals, nil // local optimum: no improving neighbor
		}
	}
}

// Evaluations implements Planner.
func (h *HillClimb) Evaluations() int64 { return h.evals.Load() }

// LookupMode selects the cache's matching policy.
type LookupMode int

// Cache lookup modes (Section VI-B3).
const (
	// Exact returns a hit only for identical data characteristics.
	Exact LookupMode = iota
	// NearestNeighbor returns the configuration of the closest key within
	// the threshold.
	NearestNeighbor
	// WeightedAverage blends the configurations of all keys within the
	// threshold, weighted by proximity, then snaps to the resource grid.
	WeightedAverage
)

// String names the mode.
func (m LookupMode) String() string {
	switch m {
	case Exact:
		return "exact"
	case NearestNeighbor:
		return "nearest-neighbor"
	case WeightedAverage:
		return "weighted-average"
	}
	return fmt.Sprintf("LookupMode(%d)", int(m))
}

// IndexKind selects the cache's index layout. The paper's prototype "keeps
// a sorted array of keys ... and we perform a binary search for lookup" and
// notes "we could also layout the array as a CSB+-Tree for larger
// workloads" — both are provided.
type IndexKind int

// Cache index layouts.
const (
	// SortedArray is the paper's prototype layout.
	SortedArray IndexKind = iota
	// BPlusTree is the CSB+-tree-style layout for larger workloads.
	BPlusTree
)

// String names the layout.
func (k IndexKind) String() string {
	switch k {
	case SortedArray:
		return "sorted-array"
	case BPlusTree:
		return "b+tree"
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// Cache wraps a Planner with the resource-plan cache: per cost model, an
// index of data-characteristic keys (smaller input size) pointing at the
// best known configuration. Safe for concurrent use.
//
// Concurrency design. The cache is lock-striped: entries live in per-bucket
// indexes keyed by (cost-model name, key bucket), and each index hashes to
// one of Stripes shards, each with its own RWMutex. Buckets are contiguous
// key ranges at least ThresholdGB wide, so every lookup mode is answered
// exactly by probing the key's bucket and its two neighbors — concurrent
// planning of different operators therefore contends only when their data
// characteristics hash to the same shard. Misses are deduplicated
// singleflight-style per (model, key): concurrent misses on the same key
// run the inner planner once, and the waiters share the leader's result
// (counted as hits, since they consumed no inner evaluations).
//
// Invariant (insert-after-unlock race): an insert can never land in an
// index dropped by Reset. Reset advances the cache generation before
// dropping the shard maps, and a miss re-checks the generation while
// holding the shard lock at insert time — a stale result computed against a
// pre-Reset cache is returned to its callers but never inserted.
// In-flight computations survive a Reset only to serve their waiters.
type Cache struct {
	Inner Planner
	Mode  LookupMode
	// ThresholdGB is the data-delta threshold for NearestNeighbor and
	// WeightedAverage matches (the x-axis of Figure 14).
	ThresholdGB float64
	// Index selects the layout; the zero value is the paper's sorted
	// array.
	Index IndexKind
	// Stripes is the number of lock shards; 0 selects the default (16).
	// Stripes=1 degenerates to a single global lock (the pre-striping
	// behavior, kept for the contention benchmarks). Must not be changed
	// after the first Plan call.
	Stripes int

	initOnce  sync.Once
	shards    []*cacheShard
	width     float64 // bucket width, >= ThresholdGB
	gen       atomic.Uint64
	hits      atomic.Int64
	misses    atomic.Int64
	deduped   atomic.Int64
	evictions atomic.Int64
}

// defaultStripes is the shard count when Stripes is zero.
const defaultStripes = 16

// cacheShard is one lock stripe: the per-(model,bucket) indexes that hash
// here plus the in-flight misses whose home bucket hashes here.
type cacheShard struct {
	mu      sync.RWMutex
	indexes map[bucketKey]keyIndex // guarded by mu
	flights map[flightKey]*flight  // guarded by mu
}

// bucketKey addresses one index: a cost model and one contiguous key range.
type bucketKey struct {
	model  string
	bucket int64
}

// flightKey identifies an in-flight miss by its exact key bits.
type flightKey struct {
	model string
	bits  uint64
}

// flight is one in-flight inner-planner run; res/err are published before
// done is closed.
type flight struct {
	done chan struct{}
	res  plan.Resources
	err  error
}

func (c *Cache) init() {
	c.initOnce.Do(func() {
		n := c.Stripes
		if n <= 0 {
			n = defaultStripes
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{}
		}
		// Buckets must span at least the match threshold so a probe of the
		// key's bucket ± 1 sees every entry within ThresholdGB.
		c.width = c.ThresholdGB
		if c.width < 1 {
			c.width = 1
		}
	})
}

func (c *Cache) bucketOf(key float64) int64 { return int64(math.Floor(key / c.width)) }

// shardFor hashes (model, bucket) onto a stripe (FNV-1a).
func (c *Cache) shardFor(model string, bucket int64) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(model); i++ {
		h = (h ^ uint64(model[i])) * 1099511628211
	}
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(bucket>>(8*i)))) * 1099511628211
	}
	return c.shards[h%uint64(len(c.shards))]
}

func (c *Cache) newIndex() keyIndex {
	if c.Index == BPlusTree {
		return newBPTree()
	}
	return &arrayIndex{}
}

// entryKV is one cached (data characteristic, configuration) pair.
type entryKV struct {
	key float64
	val plan.Resources
}

// keyIndex is the index layout abstraction: insert, exact probe, nearest
// key, and a threshold-bounded neighborhood scan.
type keyIndex interface {
	insert(key float64, val plan.Resources)
	exact(key float64) (plan.Resources, bool)
	nearest(key float64) (entryKV, bool)
	neighbors(key, threshold float64) []entryKV
	size() int
}

// exactEps treats keys closer than this as identical, absorbing float noise.
const exactEps = 1e-9

// arrayIndex is the paper's sorted-array layout with binary-search probes.
type arrayIndex struct {
	keys []float64
	vals []plan.Resources
}

func (ix *arrayIndex) size() int { return len(ix.keys) }

func (ix *arrayIndex) insert(key float64, val plan.Resources) {
	i := sort.SearchFloat64s(ix.keys, key)
	if i < len(ix.keys) && math.Abs(ix.keys[i]-key) <= exactEps {
		ix.vals[i] = val
		return
	}
	ix.keys = append(ix.keys, 0)
	ix.vals = append(ix.vals, plan.Resources{})
	copy(ix.keys[i+1:], ix.keys[i:])
	copy(ix.vals[i+1:], ix.vals[i:])
	ix.keys[i] = key
	ix.vals[i] = val
}

func (ix *arrayIndex) exact(key float64) (plan.Resources, bool) {
	i := sort.SearchFloat64s(ix.keys, key)
	for _, j := range []int{i, i - 1} {
		if j >= 0 && j < len(ix.keys) && math.Abs(ix.keys[j]-key) <= exactEps {
			return ix.vals[j], true
		}
	}
	return plan.Resources{}, false
}

func (ix *arrayIndex) nearest(key float64) (entryKV, bool) {
	if len(ix.keys) == 0 {
		return entryKV{}, false
	}
	i := sort.SearchFloat64s(ix.keys, key)
	bestJ, bestD := -1, math.Inf(1)
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(ix.keys) {
			continue
		}
		if d := math.Abs(ix.keys[j] - key); d < bestD {
			bestJ, bestD = j, d
		}
	}
	if bestJ < 0 {
		return entryKV{}, false
	}
	return entryKV{key: ix.keys[bestJ], val: ix.vals[bestJ]}, true
}

func (ix *arrayIndex) neighbors(key, threshold float64) []entryKV {
	i := sort.SearchFloat64s(ix.keys, key)
	var out []entryKV
	for j := i - 1; j >= 0 && key-ix.keys[j] <= threshold; j-- {
		out = append(out, entryKV{key: ix.keys[j], val: ix.vals[j]})
	}
	for j := i; j < len(ix.keys) && ix.keys[j]-key <= threshold; j++ {
		out = append(out, entryKV{key: ix.keys[j], val: ix.vals[j]})
	}
	return out
}

// lookup applies the cache mode on top of whichever index layout is in use.
func lookup(ix keyIndex, key float64, mode LookupMode, threshold float64, cond cluster.Conditions) (plan.Resources, bool) {
	// Exact match is honored in every mode.
	if v, ok := ix.exact(key); ok {
		return v, true
	}
	switch mode {
	case NearestNeighbor:
		if e, ok := ix.nearest(key); ok && math.Abs(e.key-key) <= threshold {
			return e.val, true
		}
	case WeightedAverage:
		var wSum, ncSum, gbSum float64
		for _, e := range ix.neighbors(key, threshold) {
			w := 1 / (math.Abs(e.key-key) + exactEps)
			wSum += w
			ncSum += w * float64(e.val.Containers)
			gbSum += w * e.val.ContainerGB
		}
		if wSum > 0 {
			r := plan.Resources{
				Containers:  int(math.Round(ncSum / wSum)),
				ContainerGB: gbSum / wSum,
			}
			return cond.Clamp(r), true
		}
	}
	return plan.Resources{}, false
}

// probe answers a lookup by gathering candidates from the key's bucket and
// its two neighbors (each read under its shard's read lock), then applying
// the cache mode. Bucket width >= ThresholdGB guarantees the three buckets
// cover every key within the threshold.
func (c *Cache) probe(model string, key float64, cond cluster.Conditions) (plan.Resources, bool) {
	b := c.bucketOf(key)
	var nearestE entryKV
	nearestOK := false
	var neighbors []entryKV
	for db := int64(-1); db <= 1; db++ {
		s := c.shardFor(model, b+db)
		s.mu.RLock()
		ix := s.indexes[bucketKey{model, b + db}]
		if ix != nil {
			// Exact match is honored in every mode.
			if v, ok := ix.exact(key); ok {
				s.mu.RUnlock()
				return v, true
			}
			switch c.Mode {
			case NearestNeighbor:
				if e, ok := ix.nearest(key); ok {
					if !nearestOK || math.Abs(e.key-key) < math.Abs(nearestE.key-key) {
						nearestE, nearestOK = e, true
					}
				}
			case WeightedAverage:
				neighbors = append(neighbors, ix.neighbors(key, c.ThresholdGB)...)
			}
		}
		s.mu.RUnlock()
	}
	switch c.Mode {
	case NearestNeighbor:
		if nearestOK && math.Abs(nearestE.key-key) <= c.ThresholdGB {
			return nearestE.val, true
		}
	case WeightedAverage:
		var wSum, ncSum, gbSum float64
		for _, e := range neighbors {
			w := 1 / (math.Abs(e.key-key) + exactEps)
			wSum += w
			ncSum += w * float64(e.val.Containers)
			gbSum += w * e.val.ContainerGB
		}
		if wSum > 0 {
			r := plan.Resources{
				Containers:  int(math.Round(ncSum / wSum)),
				ContainerGB: gbSum / wSum,
			}
			return cond.Clamp(r), true
		}
	}
	return plan.Resources{}, false
}

// Plan implements Planner: look up the cache first; on a miss, run the
// inner planner (deduplicated against concurrent misses on the same key)
// and insert the result.
func (c *Cache) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	r, _, err := c.PlanCounted(m, ssGB, cond)
	return r, err
}

// PlanCounted implements Counted: cache hits and coalesced misses consume
// zero inner evaluations; only the miss that runs the inner planner reports
// that run's evaluations.
func (c *Cache) PlanCounted(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, int64, error) {
	if c.Inner == nil {
		return plan.Resources{}, 0, fmt.Errorf("resource: cache has no inner planner")
	}
	c.init()
	model := m.Name()
	if r, hit := c.probe(model, ssGB, cond); hit {
		c.hits.Add(1)
		// Across-query reuse can cross cluster-condition changes; snap the
		// cached configuration onto the current grid.
		return cond.Clamp(r), 0, nil
	}
	// Miss: dedupe concurrent misses on the same key via the home shard's
	// flight table.
	bucket := c.bucketOf(ssGB)
	s := c.shardFor(model, bucket)
	fk := flightKey{model, math.Float64bits(ssGB)}
	s.mu.Lock()
	// Double-check: a racing leader may have inserted this exact key
	// between our probe and taking the write lock.
	if ix := s.indexes[bucketKey{model, bucket}]; ix != nil {
		if v, ok := ix.exact(ssGB); ok {
			s.mu.Unlock()
			c.hits.Add(1)
			return cond.Clamp(v), 0, nil
		}
	}
	if fl, ok := s.flights[fk]; ok {
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return plan.Resources{}, 0, fl.err
		}
		c.hits.Add(1) // coalesced miss: served by the in-flight leader
		c.deduped.Add(1)
		return cond.Clamp(fl.res), 0, nil
	}
	fl := &flight{done: make(chan struct{})}
	if s.flights == nil {
		s.flights = make(map[flightKey]*flight)
	}
	s.flights[fk] = fl
	gen := c.gen.Load()
	s.mu.Unlock()

	c.misses.Add(1)
	r, n, err := PlanWithCount(c.Inner, m, ssGB, cond)
	fl.res, fl.err = r, err

	s.mu.Lock()
	delete(s.flights, fk)
	// Generation check: see the Cache doc comment — never insert a result
	// computed against a cache that Reset has since dropped.
	if err == nil && c.gen.Load() == gen {
		bk := bucketKey{model, bucket}
		ix := s.indexes[bk]
		if ix == nil {
			ix = c.newIndex()
			if s.indexes == nil {
				s.indexes = make(map[bucketKey]keyIndex)
			}
			s.indexes[bk] = ix
		}
		ix.insert(ssGB, r)
	}
	s.mu.Unlock()
	close(fl.done)
	if err != nil {
		return plan.Resources{}, n, err
	}
	return r, n, nil
}

// Evaluations implements Planner (delegates to the inner planner, so cache
// hits contribute zero).
func (c *Cache) Evaluations() int64 { return c.Inner.Evaluations() }

// Hits returns the number of cache hits so far.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses so far.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Stats is a point-in-time snapshot of the cache's counters — the stable
// export consumed by the service's /metrics endpoint and the CLI batch
// summary.
type Stats struct {
	// Hits counts lookups served without running the inner planner,
	// including coalesced misses (see Deduped).
	Hits int64
	// Misses counts lookups that ran the inner planner.
	Misses int64
	// Deduped counts singleflight-coalesced loads: concurrent misses on a
	// key already being computed that were served by the leader's result.
	// Deduped lookups are also counted in Hits (they consumed no inner
	// evaluations).
	Deduped int64
	// Evictions counts entries dropped by Reset calls.
	Evictions int64
	// Entries is the number of currently cached configurations.
	Entries int
	// Generation increments on every Reset (the insert-after-Reset guard).
	Generation uint64
}

// Stats returns a snapshot of the cache counters. Counters are read
// individually, so a snapshot taken under concurrent use is approximate
// across fields but each field is exact.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Deduped:    c.deduped.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    c.Size(),
		Generation: c.gen.Load(),
	}
}

// Reset clears every per-model index (the paper clears the cache before
// each query except in the across-query caching experiment, Fig 15b).
// In-flight misses are not interrupted: they complete, serve their waiters,
// and are discarded rather than inserted (see the generation invariant on
// Cache).
func (c *Cache) Reset() {
	c.init()
	// Advance the generation before dropping any index so a concurrent
	// insert either observes the bump (and skips) or lands before the drop
	// (and is dropped with the index).
	c.gen.Add(1)
	c.drop()
}

// ResetIfGeneration resets the cache only if its generation still equals
// gen, and reports whether it did. This is the CAS form of Reset for
// components that observed the cache at some generation, did slow work
// (e.g. retraining a cost model), and want to invalidate the entries that
// slow work made stale — without clobbering a cache some other component
// already rebuilt in the meantime. Exactly one of any set of concurrent
// callers holding the same observed generation wins.
func (c *Cache) ResetIfGeneration(gen uint64) bool {
	c.init()
	// Same ordering as Reset: the CAS bump is visible before any index is
	// dropped, so concurrent inserts cannot land in a dropped index.
	if !c.gen.CompareAndSwap(gen, gen+1) {
		return false
	}
	c.drop()
	return true
}

// drop clears every shard index, counting the evicted entries. The caller
// must already have advanced the generation.
func (c *Cache) drop() {
	dropped := int64(0)
	for _, s := range c.shards {
		s.mu.Lock()
		for _, ix := range s.indexes {
			dropped += int64(ix.size())
		}
		s.indexes = nil
		s.mu.Unlock()
	}
	c.evictions.Add(dropped)
}

// Size returns the total number of cached entries across models.
func (c *Cache) Size() int {
	c.init()
	n := 0
	for _, s := range c.shards {
		s.mu.RLock()
		for _, ix := range s.indexes {
			n += ix.size()
		}
		s.mu.RUnlock()
	}
	return n
}
