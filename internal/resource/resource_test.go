package resource

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"raqo/internal/cluster"
	"raqo/internal/cost"
	"raqo/internal/plan"
)

// quadModel has a unique global optimum at (ncOpt, csOpt), convex, so hill
// climbing must find the same configuration as brute force.
func quadModel(ncOpt, csOpt float64) cost.Model {
	return cost.ModelFunc{
		ModelName: "quad",
		Fn: func(ss, cs, nc float64) float64 {
			return 10 + ss + (nc-ncOpt)*(nc-ncOpt) + 3*(cs-csOpt)*(cs-csOpt)
		},
	}
}

func cond() cluster.Conditions { return cluster.Default() }

func TestBruteForceFindsOptimum(t *testing.T) {
	b := &BruteForce{}
	r, err := b.Plan(quadModel(42, 7), 1, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r.Containers != 42 || r.ContainerGB != 7 {
		t.Errorf("got %v, want 42x7GB", r)
	}
	if b.Evaluations() != cond().NumConfigs() {
		t.Errorf("evaluations = %d, want %d", b.Evaluations(), cond().NumConfigs())
	}
}

func TestBruteForceValidation(t *testing.T) {
	b := &BruteForce{}
	if _, err := b.Plan(quadModel(1, 1), 1, cluster.Conditions{}); err == nil {
		t.Error("invalid conditions accepted")
	}
}

func TestHillClimbFindsConvexOptimum(t *testing.T) {
	h := &HillClimb{}
	r, err := h.Plan(quadModel(42, 7), 1, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r.Containers != 42 || r.ContainerGB != 7 {
		t.Errorf("got %v, want 42x7GB", r)
	}
	// The whole point: far fewer evaluations than brute force.
	if h.Evaluations() >= cond().NumConfigs()/2 {
		t.Errorf("hill climb used %d evaluations, brute force would use %d",
			h.Evaluations(), cond().NumConfigs())
	}
}

func TestHillClimbRespectsBounds(t *testing.T) {
	// Optimum outside the space: must clamp to the boundary.
	h := &HillClimb{}
	r, err := h.Plan(quadModel(1000, 100), 1, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r.Containers != 100 || r.ContainerGB != 10 {
		t.Errorf("got %v, want 100x10GB (boundary)", r)
	}
}

func TestHillClimbCustomStart(t *testing.T) {
	h := &HillClimb{Start: plan.Resources{Containers: 90, ContainerGB: 9}}
	r, err := h.Plan(quadModel(42, 7), 1, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r.Containers != 42 || r.ContainerGB != 7 {
		t.Errorf("from custom start: got %v", r)
	}
}

func TestHillClimbLocalOptimumProperty(t *testing.T) {
	// For arbitrary (possibly multimodal) smooth models, the result must be
	// a local optimum: no single step improves it. And it must stay on the
	// grid.
	c := cond()
	f := func(a, b, cph uint8) bool {
		// A two-bump cost surface.
		m := cost.ModelFunc{ModelName: "bumpy", Fn: func(ss, cs, nc float64) float64 {
			return math.Sin(float64(a%7)+nc/9)*50 + math.Cos(float64(b%7)+cs)*40 + nc*float64(cph%3)
		}}
		h := &HillClimb{}
		r, err := h.Plan(m, 1, c)
		if err != nil {
			return false
		}
		if !c.Contains(r) {
			return false
		}
		cur := m.Cost(1, r.ContainerGB, float64(r.Containers))
		for _, d := range []plan.Resources{
			{Containers: r.Containers - c.ContainerStep, ContainerGB: r.ContainerGB},
			{Containers: r.Containers + c.ContainerStep, ContainerGB: r.ContainerGB},
			{Containers: r.Containers, ContainerGB: r.ContainerGB - c.GBStep},
			{Containers: r.Containers, ContainerGB: r.ContainerGB + c.GBStep},
		} {
			if !c.Contains(d) {
				continue
			}
			if m.Cost(1, d.ContainerGB, float64(d.Containers)) < cur-1e-9 {
				return false // a strictly better neighbor exists
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHillClimbMatchesBruteForceOnPaperModels(t *testing.T) {
	// On the paper's own published cost models the hill climb should land
	// at (or extremely near) the brute-force optimum, since the regression
	// surfaces are smooth.
	for _, m := range []cost.Model{cost.PaperSMJ(), cost.PaperBHJ()} {
		for _, ss := range []float64{0.5, 2, 5.1} {
			bf := &BruteForce{}
			want, err := bf.Plan(m, ss, cond())
			if err != nil {
				t.Fatal(err)
			}
			hc := &HillClimb{}
			got, err := hc.Plan(m, ss, cond())
			if err != nil {
				t.Fatal(err)
			}
			wc := m.Cost(ss, want.ContainerGB, float64(want.Containers))
			gc := m.Cost(ss, got.ContainerGB, float64(got.Containers))
			if gc > wc*1.05+1e-9 {
				t.Errorf("ss=%v: hill climb cost %v at %v, brute force %v at %v", ss, gc, got, wc, want)
			}
		}
	}
}

func TestCacheExactMode(t *testing.T) {
	inner := &HillClimb{}
	c := &Cache{Inner: inner, Mode: Exact}
	m := quadModel(42, 7)
	r1, err := c.Plan(m, 3.0, cond())
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	// Same key: hit, no extra evaluations.
	before := inner.Evaluations()
	r2, err := c.Plan(m, 3.0, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("cache returned %v, want %v", r2, r1)
	}
	if c.Hits() != 1 || inner.Evaluations() != before {
		t.Errorf("exact hit should not re-plan (hits=%d, evals %d->%d)", c.Hits(), before, inner.Evaluations())
	}
	// Different key: miss.
	if _, err := c.Plan(m, 3.1, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Errorf("misses = %d, want 2", c.Misses())
	}
	if c.Size() != 2 {
		t.Errorf("size = %d, want 2", c.Size())
	}
}

func TestCachePerModelIsolation(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: Exact}
	smj, bhj := cost.PaperSMJ(), cost.PaperBHJ()
	if _, err := c.Plan(smj, 1, cond()); err != nil {
		t.Fatal(err)
	}
	// Same key, different model: must be a miss (separate index).
	if _, err := c.Plan(bhj, 1, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 0 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 0/2", c.Hits(), c.Misses())
	}
}

func TestCacheNearestNeighbor(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: NearestNeighbor, ThresholdGB: 0.5}
	m := quadModel(42, 7)
	r1, err := c.Plan(m, 3.0, cond())
	if err != nil {
		t.Fatal(err)
	}
	// Within threshold: hit with the neighbor's configuration.
	r2, err := c.Plan(m, 3.3, cond())
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 || c.Hits() != 1 {
		t.Errorf("NN lookup: got %v hits=%d", r2, c.Hits())
	}
	// Beyond threshold: miss.
	if _, err := c.Plan(m, 4.0, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Errorf("misses = %d", c.Misses())
	}
}

func TestCacheWeightedAverage(t *testing.T) {
	// Threshold below the 2.0-3.0 key spacing so both anchor keys insert,
	// but above the 0.5 distance from the 2.5 probe to each anchor.
	c := &Cache{Inner: &BruteForce{}, Mode: WeightedAverage, ThresholdGB: 0.6}
	// Model whose optimum depends on ss so neighbors differ.
	m := cost.ModelFunc{ModelName: "ss-dependent", Fn: func(ss, cs, nc float64) float64 {
		opt := 20 + 10*ss
		return (nc-opt)*(nc-opt) + (cs-5)*(cs-5)
	}}
	if _, err := c.Plan(m, 2.0, cond()); err != nil { // optimum nc=40
		t.Fatal(err)
	}
	if _, err := c.Plan(m, 3.0, cond()); err != nil { // optimum nc=50
		t.Fatal(err)
	}
	r, err := c.Plan(m, 2.5, cond())
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 1 {
		t.Fatalf("WA lookup missed (hits=%d)", c.Hits())
	}
	// Equidistant neighbors: average of 40 and 50 = 45.
	if r.Containers != 45 || r.ContainerGB != 5 {
		t.Errorf("WA = %v, want 45x5GB", r)
	}
	if !cond().Contains(r) {
		t.Error("WA result off-grid")
	}
}

func TestCacheWeightedAverageSnapsToGrid(t *testing.T) {
	c := &Cache{Inner: &BruteForce{}, Mode: WeightedAverage, ThresholdGB: 1.0}
	m := quadModel(42, 7)
	if _, err := c.Plan(m, 1.0, cond()); err != nil {
		t.Fatal(err)
	}
	r, err := c.Plan(m, 1.2, cond())
	if err != nil {
		t.Fatal(err)
	}
	if !cond().Contains(r) {
		t.Errorf("WA result %v off-grid", r)
	}
}

func TestCacheReset(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: Exact}
	m := quadModel(42, 7)
	if _, err := c.Plan(m, 1, cond()); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Size() != 0 {
		t.Errorf("size after reset = %d", c.Size())
	}
	if _, err := c.Plan(m, 1, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Errorf("misses = %d, want 2 (reset cleared the entry)", c.Misses())
	}
}

func TestCacheNoInner(t *testing.T) {
	c := &Cache{}
	if _, err := c.Plan(quadModel(1, 1), 1, cond()); err == nil {
		t.Error("nil inner accepted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: NearestNeighbor, ThresholdGB: 0.01}
	m := quadModel(42, 7)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				_, err = c.Plan(m, float64(i%10), cond())
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c.Size() > 10 {
		t.Errorf("size = %d, want <= 10 distinct keys", c.Size())
	}
}

func TestLookupModeString(t *testing.T) {
	if Exact.String() != "exact" || NearestNeighbor.String() != "nearest-neighbor" ||
		WeightedAverage.String() != "weighted-average" {
		t.Error("mode names wrong")
	}
}

// The paper's headline: hill climbing explores ~4x fewer configurations
// than brute force on its cost models.
func TestHillClimbReductionFactor(t *testing.T) {
	bf := &BruteForce{}
	hc := &HillClimb{}
	for _, ss := range []float64{0.5, 1, 2, 3.4, 5.1} {
		if _, err := bf.Plan(cost.PaperSMJ(), ss, cond()); err != nil {
			t.Fatal(err)
		}
		if _, err := hc.Plan(cost.PaperSMJ(), ss, cond()); err != nil {
			t.Fatal(err)
		}
	}
	if factor := float64(bf.Evaluations()) / float64(hc.Evaluations()); factor < 2 {
		t.Errorf("hill climb reduction factor = %.1fx, want >= 2x", factor)
	}
}

func TestResetIfGeneration(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: Exact}
	m := quadModel(42, 7)
	if _, err := c.Plan(m, 1, cond()); err != nil {
		t.Fatal(err)
	}
	gen := c.Stats().Generation

	// Stale generation: no reset, entries survive.
	if c.ResetIfGeneration(gen + 5) {
		t.Fatal("reset succeeded with a stale generation")
	}
	if c.Size() != 1 || c.Stats().Generation != gen {
		t.Fatalf("failed CAS mutated the cache: size=%d gen=%d", c.Size(), c.Stats().Generation)
	}

	// Current generation: resets exactly like Reset.
	if !c.ResetIfGeneration(gen) {
		t.Fatal("reset refused with the current generation")
	}
	if c.Size() != 0 {
		t.Error("entries survived ResetIfGeneration")
	}
	if g := c.Stats().Generation; g != gen+1 {
		t.Errorf("generation = %d, want %d", g, gen+1)
	}
	if c.Stats().Evictions == 0 {
		t.Error("eviction not counted")
	}

	// The observed generation is now stale: a second caller holding it
	// cannot clobber the rebuilt cache.
	if _, err := c.Plan(m, 2, cond()); err != nil {
		t.Fatal(err)
	}
	if c.ResetIfGeneration(gen) {
		t.Fatal("second reset with the consumed generation succeeded")
	}
	if c.Size() != 1 {
		t.Error("rebuilt cache was clobbered")
	}
}

// TestResetIfGenerationRace: of N concurrent callers holding the same
// observed generation, exactly one wins, and the generation advances
// exactly once. Run with -race.
func TestResetIfGenerationRace(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: Exact}
	m := quadModel(42, 7)
	for round := 0; round < 20; round++ {
		if _, err := c.Plan(m, float64(round), cond()); err != nil {
			t.Fatal(err)
		}
		gen := c.Stats().Generation
		const racers = 8
		wins := make(chan bool, racers)
		var start, wg sync.WaitGroup
		start.Add(1)
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				wins <- c.ResetIfGeneration(gen)
			}()
		}
		start.Done()
		wg.Wait()
		close(wins)
		won := 0
		for w := range wins {
			if w {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("round %d: %d concurrent resets won, want exactly 1", round, won)
		}
		if g := c.Stats().Generation; g != gen+1 {
			t.Fatalf("round %d: generation advanced to %d from %d, want exactly one bump", round, g, gen)
		}
	}
}
