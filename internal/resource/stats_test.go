package resource

import (
	"sync"
	"testing"

	"raqo/internal/cluster"
	"raqo/internal/cost"
)

func TestCacheStatsSnapshot(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: NearestNeighbor, ThresholdGB: 0.5}
	m := cost.PaperSMJ()
	cond := cluster.Default()

	if _, err := c.Plan(m, 2.0, cond); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.Plan(m, 2.0, cond); err != nil { // exact hit
		t.Fatal(err)
	}
	if _, err := c.Plan(m, 2.3, cond); err != nil { // nearest-neighbor hit
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss and 2 hits", st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.Deduped != 0 || st.Evictions != 0 || st.Generation != 0 {
		t.Fatalf("unexpected deduped/evictions/generation in %+v", st)
	}

	c.Reset()
	st = c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions after Reset = %d, want 1", st.Evictions)
	}
	if st.Generation != 1 {
		t.Fatalf("generation after Reset = %d, want 1", st.Generation)
	}
	if st.Entries != 0 {
		t.Fatalf("entries after Reset = %d, want 0", st.Entries)
	}
}

func TestCacheStatsCountsDedupedLoads(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: Exact}
	m := cost.PaperSMJ()
	cond := cluster.Default()

	const workers = 8
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			if _, err := c.Plan(m, 3.7, cond); err != nil {
				t.Error(err)
			}
		}()
	}
	start.Done()
	wg.Wait()

	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
	// Every non-leader was either coalesced onto the flight or served by
	// the leader's inserted entry; deduped counts only the former.
	if st.Deduped < 0 || st.Deduped > workers-1 {
		t.Fatalf("deduped = %d, want within [0,%d]", st.Deduped, workers-1)
	}
	if st.Deduped+st.Misses+(st.Hits-st.Deduped) != workers {
		t.Fatalf("stats don't account for all %d lookups: %+v", workers, st)
	}
}
