package resource

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raqo/internal/cluster"
	"raqo/internal/cost"
	"raqo/internal/plan"
)

// slowPlanner counts how many times its inner planning actually runs and
// holds each run open long enough for concurrent misses to pile up.
type slowPlanner struct {
	runs  atomic.Int64
	delay time.Duration
}

func (s *slowPlanner) Plan(m cost.Model, ssGB float64, c cluster.Conditions) (plan.Resources, error) {
	s.runs.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return plan.Resources{Containers: 10, ContainerGB: 3}, nil
}

func (s *slowPlanner) Evaluations() int64 { return s.runs.Load() }

// TestCacheSingleflight: concurrent misses on one key must run the inner
// planner exactly once; everyone else waits and shares the leader's result.
func TestCacheSingleflight(t *testing.T) {
	inner := &slowPlanner{delay: 5 * time.Millisecond}
	c := &Cache{Inner: inner}
	m := quadModel(1, 1)
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]plan.Resources, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = c.Plan(m, 2.5, cond())
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if results[g] != results[0] {
			t.Errorf("goroutine %d got %v, leader got %v", g, results[g], results[0])
		}
	}
	if n := inner.runs.Load(); n != 1 {
		t.Errorf("inner planner ran %d times, want exactly 1", n)
	}
	if c.Misses() != 1 {
		t.Errorf("misses = %d, want 1 (coalesced misses count as hits)", c.Misses())
	}
	if c.Hits() != goroutines-1 {
		t.Errorf("hits = %d, want %d", c.Hits(), goroutines-1)
	}
}

// TestCacheResetDuringPlan: Reset racing with in-flight Plans must never
// deadlock, lose waiters, or let a pre-Reset result sneak into the new
// generation's index (the generation invariant on Cache).
func TestCacheResetDuringPlan(t *testing.T) {
	inner := &slowPlanner{delay: 100 * time.Microsecond}
	c := &Cache{Inner: inner}
	m := quadModel(3, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Plan(m, float64(i%8), cond()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Reset()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the dust settles the cache still works and repopulates.
	c.Reset()
	if _, err := c.Plan(m, 1, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 {
		t.Errorf("size after quiesced insert = %d, want 1", c.Size())
	}
}

// TestCacheResetDropsStaleInsert pins the generation invariant precisely: a
// Reset issued while a miss is in flight must keep that miss's result out
// of the index, while its callers still receive it.
func TestCacheResetDropsStaleInsert(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	inner := &gatedPlanner{started: started, release: release}
	c := &Cache{Inner: inner}
	m := quadModel(1, 1)

	var r plan.Resources
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err = c.Plan(m, 4, cond())
	}()
	<-started
	c.Reset() // lands mid-flight: the leader's insert must be discarded
	close(release)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if r.IsZero() {
		t.Error("in-flight caller should still receive the computed result")
	}
	if c.Size() != 0 {
		t.Errorf("stale insert landed: size = %d, want 0", c.Size())
	}
	if c.Misses() != 1 {
		t.Errorf("misses = %d, want 1", c.Misses())
	}
}

type gatedPlanner struct {
	started chan struct{}
	release chan struct{}
	runs    atomic.Int64
}

func (g *gatedPlanner) Plan(m cost.Model, ssGB float64, c cluster.Conditions) (plan.Resources, error) {
	if g.runs.Add(1) == 1 {
		close(g.started)
		<-g.release
	}
	return plan.Resources{Containers: 5, ContainerGB: 2}, nil
}

func (g *gatedPlanner) Evaluations() int64 { return g.runs.Load() }

// TestCacheStripesOne: the degenerate single-stripe configuration must
// behave identically (it is the contention-benchmark baseline).
func TestCacheStripesOne(t *testing.T) {
	for _, mode := range []LookupMode{Exact, NearestNeighbor, WeightedAverage} {
		c := &Cache{Inner: &HillClimb{}, Mode: mode, ThresholdGB: 0.5, Stripes: 1}
		m := quadModel(2, 3)
		r1, err := c.Plan(m, 2.0, cond())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := c.Plan(m, 2.0, cond())
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Errorf("mode %v: exact re-lookup diverged: %v vs %v", mode, r1, r2)
		}
		if c.Hits() != 1 || c.Misses() != 1 {
			t.Errorf("mode %v: hits=%d misses=%d, want 1/1", mode, c.Hits(), c.Misses())
		}
	}
}

// TestCacheCrossBucketLookup: approximate matches must be found even when
// the probe key and the cached key fall into different buckets (the ±1
// bucket probe relies on bucket width >= ThresholdGB).
func TestCacheCrossBucketLookup(t *testing.T) {
	c := &Cache{Inner: &HillClimb{}, Mode: NearestNeighbor, ThresholdGB: 0.4}
	m := quadModel(5, 1)
	// Bucket width is max(ThresholdGB, 1) = 1: key 1.9 lands in bucket 1,
	// key 2.1 in bucket 2, and they are 0.2 < ThresholdGB apart.
	if _, err := c.Plan(m, 1.9, cond()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(m, 2.1, cond()); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 1 {
		t.Errorf("hits = %d, want 1 (cross-bucket nearest-neighbor match)", c.Hits())
	}
}
