// Package scheduler implements the "interaction with DAG scheduler" agenda
// item of the paper's Section VIII: with RAQO, submitted jobs carry precise
// per-stage resource requests, and the scheduler must decide what to do
// when the exact resources are not available — delay the job, degrade the
// request to what is free, or hand the query back to the optimizer for a
// plan that fits the current conditions.
package scheduler

import (
	"fmt"

	"raqo/internal/cluster"
	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/execsim"
	"raqo/internal/feedback"
	"raqo/internal/plan"
	"raqo/internal/units"
)

// Policy is what the scheduler does when a stage's requested resources
// exceed what the cluster can currently offer.
type Policy int

// Scheduling policies for infeasible requests.
const (
	// Wait queues the job until the requested resources free up; the wait
	// is charged as queue time (the Figure 1 pathology).
	Wait Policy = iota
	// Degrade clamps the request onto the available conditions and runs
	// with what is free — fast admission, possibly slower execution.
	Degrade
	// Reoptimize hands the query back to RAQO under the available
	// conditions — adaptive RAQO as a scheduler policy.
	Reoptimize
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Wait:
		return "wait"
	case Degrade:
		return "degrade"
	case Reoptimize:
		return "reoptimize"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a policy name as rendered by String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "wait":
		return Wait, nil
	case "degrade":
		return Degrade, nil
	case "reoptimize":
		return Reoptimize, nil
	}
	return 0, fmt.Errorf("scheduler: unknown policy %q", s)
}

// Outcome reports how one job fared through the scheduler.
type Outcome struct {
	Policy Policy
	// QueueSeconds is the simulated wait before the job could start.
	QueueSeconds float64
	// ExecSeconds is the simulated execution time of the plan that
	// actually ran.
	ExecSeconds float64
	// Replanned is true when the Reoptimize policy produced a different
	// joint plan than the submitted one.
	Replanned bool
	// Result is the simulated execution result.
	Result *execsim.Result
}

// TotalSeconds is queue plus execution time.
func (o *Outcome) TotalSeconds() float64 { return o.QueueSeconds + o.ExecSeconds }

// Scheduler admits joint query/resource plans onto a cluster whose
// currently free capacity may be below the conditions the plan was
// optimized for.
type Scheduler struct {
	Engine  execsim.Params
	Pricing cost.Pricing
	// Optimizer is consulted by the Reoptimize policy; required for it.
	Optimizer *core.Optimizer
	// Reopt, when set, answers Reoptimize submissions through the
	// incremental re-optimization engine instead of a from-scratch joint
	// optimization: repeated conditions hit its exact memo and small
	// restrictions patch-validate the cached plan, with answers provably
	// bit-identical to planning from scratch. It must wrap Optimizer.
	Reopt *core.Incremental
	// DrainRate approximates how fast queued-for resources free up, in
	// containers per second, when the Wait policy must queue a job.
	DrainRate float64
	// Feedback, when set, receives every execution outcome as a feedback
	// observation — the channel through which scheduled work trains the
	// cost model online. Recording is best-effort: a plan the live model
	// cannot price is simply not recorded, and under the Reoptimize policy
	// the replanning itself already runs against the recalibrated model
	// set (the optimizer reads its models per call).
	Feedback *feedback.Observer
}

// record reports one executed plan to the feedback observer, predicting
// with the live model set when the caller has no planner prediction
// (predictedSeconds <= 0).
func (s *Scheduler) record(root *plan.Node, predictedSeconds float64, predictedMoney units.Dollars, res *execsim.Result) {
	if s.Feedback == nil || res == nil {
		return
	}
	if predictedSeconds <= 0 {
		v, err := s.Feedback.Recal.Models().PlanVector(root, s.Pricing)
		if err != nil {
			return
		}
		predictedSeconds, predictedMoney = v.Time, v.Money
	}
	// Best-effort: an observation the store rejects is dropped, not fatal.
	_, _ = s.Feedback.Record(s.Engine.Name, root, predictedSeconds, predictedMoney, res)
}

// MaxRequested returns the largest per-stage request of a plan — the gang
// size a FIFO cluster must free before the plan can start. It walks the
// tree directly (no operator-slice allocation): it sits on the arbiter's
// per-admission hot path.
func MaxRequested(p *plan.Node) plan.Resources {
	var max plan.Resources
	maxRequested(p, &max)
	return max
}

func maxRequested(n *plan.Node, max *plan.Resources) {
	if n == nil || n.IsScan() {
		return
	}
	maxRequested(n.Left, max)
	maxRequested(n.Right, max)
	if n.Res.Containers > max.Containers {
		max.Containers = n.Res.Containers
	}
	if n.Res.ContainerGB > max.ContainerGB {
		max.ContainerGB = n.Res.ContainerGB
	}
}

// Fits reports whether every stage's request is satisfiable under the
// available conditions. Exported so the workload arbiter applies the same
// admission predicate the one-shot scheduler does. Like MaxRequested it
// recurses instead of materializing the operator list.
func Fits(p *plan.Node, avail cluster.Conditions) bool {
	if p == nil || p.IsScan() {
		return true
	}
	if p.Res.Containers > avail.MaxContainers || p.Res.ContainerGB > avail.MaxContainerGB+1e-9 {
		return false
	}
	return Fits(p.Left, avail) && Fits(p.Right, avail)
}

// ClampClone returns a copy of p with every join's resource request
// clamped onto cond, reusing buf for the join walk (pass nil when not on
// a hot path) and returning the possibly-grown buffer. It is the one
// implementation of the Degrade transformation, shared by the one-shot
// scheduler, the workload arbiter and the cloud arbiter's degrade
// recovery.
func ClampClone(p *plan.Node, cond cluster.Conditions, buf []*plan.Node) (*plan.Node, []*plan.Node) {
	clamped := p.Clone()
	buf = clamped.AppendJoins(buf[:0])
	for _, j := range buf {
		j.Res = cond.Clamp(j.Res)
	}
	return clamped, buf
}

// Submit schedules a joint plan under the currently available conditions
// with the given policy. The submitted plan is not modified: Degrade and
// Reoptimize run a copy or a new plan.
func (s *Scheduler) Submit(q *plan.Query, submitted *plan.Node, avail cluster.Conditions, policy Policy) (*Outcome, error) {
	if submitted == nil {
		return nil, fmt.Errorf("scheduler: nil plan")
	}
	if err := avail.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler: available conditions: %w", err)
	}
	if Fits(submitted, avail) {
		res, err := s.Engine.Execute(submitted, s.Pricing)
		if err != nil {
			return nil, err
		}
		s.record(submitted, 0, 0, res)
		return &Outcome{Policy: policy, ExecSeconds: res.Seconds, Result: res}, nil
	}
	switch policy {
	case Wait:
		// The job waits for the missing containers to drain free.
		req := MaxRequested(submitted)
		missing := req.Containers - avail.MaxContainers
		if missing < 0 {
			missing = 0
		}
		rate := s.DrainRate
		if rate <= 0 {
			rate = 0.05 // containers per second: a busy shared cluster
		}
		wait := float64(missing) / rate
		res, err := s.Engine.Execute(submitted, s.Pricing)
		if err != nil {
			return nil, err
		}
		s.record(submitted, 0, 0, res)
		return &Outcome{Policy: policy, QueueSeconds: wait, ExecSeconds: res.Seconds, Result: res}, nil

	case Degrade:
		clamped, _ := ClampClone(submitted, avail, nil)
		res, err := s.Engine.Execute(clamped, s.Pricing)
		if err != nil {
			return nil, err
		}
		s.record(clamped, 0, 0, res)
		return &Outcome{Policy: policy, ExecSeconds: res.Seconds, Result: res}, nil

	case Reoptimize:
		if s.Optimizer == nil {
			return nil, fmt.Errorf("scheduler: Reoptimize policy needs an optimizer")
		}
		if q == nil {
			return nil, fmt.Errorf("scheduler: Reoptimize policy needs the logical query")
		}
		var d *core.Decision
		var err error
		if s.Reopt != nil {
			d, _, err = s.Reopt.Optimize(q, avail)
		} else {
			if err := s.Optimizer.SetConditions(avail); err != nil {
				return nil, err
			}
			d, err = s.Optimizer.Optimize(q)
		}
		if err != nil {
			return nil, err
		}
		res, err := s.Engine.Execute(d.Plan, s.Pricing)
		if err != nil {
			return nil, err
		}
		s.record(d.Plan, d.Time, d.Money, res)
		return &Outcome{
			Policy:      policy,
			ExecSeconds: res.Seconds,
			Replanned:   d.Plan.SignatureWithResources() != submitted.SignatureWithResources(),
			Result:      res,
		}, nil
	}
	return nil, fmt.Errorf("scheduler: unknown policy %v", policy)
}
