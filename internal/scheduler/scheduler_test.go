package scheduler

import (
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/cluster"
	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/execsim"
	"raqo/internal/feedback"
	"raqo/internal/plan"
	"raqo/internal/workload"
)

func setup(t *testing.T) (*Scheduler, *plan.Query, *plan.Node) {
	t.Helper()
	s := catalog.TPCH(100)
	q, err := workload.TPCHQuery(s, workload.Q3)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workload.TrainedModels(execsim.Hive())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.New(cluster.Default(), core.Options{Models: models})
	if err != nil {
		t.Fatal(err)
	}
	d, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	sched := &Scheduler{
		Engine:    execsim.Hive(),
		Pricing:   cost.DefaultPricing(),
		Optimizer: opt,
	}
	return sched, q, d.Plan
}

// lowAvail is a shrunken cluster that cannot satisfy a 100x10GB-scale
// optimum.
func lowAvail() cluster.Conditions {
	return cluster.Conditions{
		MinContainers: 1, MaxContainers: 8, ContainerStep: 1,
		MinContainerGB: 1, MaxContainerGB: 4, GBStep: 1,
	}
}

func TestSubmitFitsRunsImmediately(t *testing.T) {
	sched, q, p := setup(t)
	out, err := sched.Submit(q, p, cluster.Default(), Wait)
	if err != nil {
		t.Fatal(err)
	}
	if out.QueueSeconds != 0 {
		t.Errorf("queue = %v, want 0 when the request fits", out.QueueSeconds)
	}
	if out.ExecSeconds <= 0 || out.Result == nil {
		t.Errorf("outcome = %+v", out)
	}
}

func TestSubmitWaitQueues(t *testing.T) {
	sched, q, p := setup(t)
	out, err := sched.Submit(q, p, lowAvail(), Wait)
	if err != nil {
		t.Fatal(err)
	}
	if out.QueueSeconds <= 0 {
		t.Error("Wait policy should queue when resources are short")
	}
	if out.TotalSeconds() != out.QueueSeconds+out.ExecSeconds {
		t.Error("TotalSeconds arithmetic")
	}
}

func TestSubmitDegradeClampsAndRuns(t *testing.T) {
	sched, q, p := setup(t)
	before := p.SignatureWithResources()
	out, err := sched.Submit(q, p, lowAvail(), Degrade)
	if err != nil {
		t.Fatal(err)
	}
	if out.QueueSeconds != 0 {
		t.Error("Degrade should admit immediately")
	}
	if p.SignatureWithResources() != before {
		t.Error("Degrade mutated the submitted plan")
	}
	// Degraded execution is slower than the full-cluster run.
	full, err := sched.Submit(q, p, cluster.Default(), Degrade)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExecSeconds <= full.ExecSeconds {
		t.Errorf("degraded run (%v) should be slower than full (%v)", out.ExecSeconds, full.ExecSeconds)
	}
}

func TestSubmitReoptimizeReplans(t *testing.T) {
	sched, q, p := setup(t)
	out, err := sched.Submit(q, p, lowAvail(), Reoptimize)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Replanned {
		t.Error("shrunken cluster should force a different joint plan")
	}
	if out.ExecSeconds <= 0 {
		t.Errorf("outcome = %+v", out)
	}
}

// The whole point of the Section VIII discussion: on a badly congested
// cluster (slow drain), re-optimizing should beat waiting for the original
// request, and be at least as good as blind degradation.
func TestReoptimizeBeatsWaitAndDegrade(t *testing.T) {
	sched, q, p := setup(t)
	sched.DrainRate = 0.01 // severely congested: ~100s per freed container
	avail := lowAvail()
	wait, err := sched.Submit(q, p, avail, Wait)
	if err != nil {
		t.Fatal(err)
	}
	degrade, err := sched.Submit(q, p, avail, Degrade)
	if err != nil {
		t.Fatal(err)
	}
	reopt, err := sched.Submit(q, p, avail, Reoptimize)
	if err != nil {
		t.Fatal(err)
	}
	if reopt.TotalSeconds() > wait.TotalSeconds() {
		t.Errorf("reoptimize (%v) should beat waiting (%v)", reopt.TotalSeconds(), wait.TotalSeconds())
	}
	if reopt.TotalSeconds() > degrade.TotalSeconds()*1.05 {
		t.Errorf("reoptimize (%v) should be at least as good as degrading (%v)",
			reopt.TotalSeconds(), degrade.TotalSeconds())
	}
}

func TestSubmitValidation(t *testing.T) {
	sched, q, p := setup(t)
	if _, err := sched.Submit(q, nil, cluster.Default(), Wait); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := sched.Submit(q, p, cluster.Conditions{}, Wait); err == nil {
		t.Error("invalid conditions accepted")
	}
	if _, err := sched.Submit(nil, p, lowAvail(), Reoptimize); err == nil {
		t.Error("Reoptimize without a query accepted")
	}
	noOpt := &Scheduler{Engine: execsim.Hive(), Pricing: cost.DefaultPricing()}
	if _, err := noOpt.Submit(q, p, lowAvail(), Reoptimize); err == nil {
		t.Error("Reoptimize without an optimizer accepted")
	}
	if _, err := sched.Submit(q, p, lowAvail(), Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if Wait.String() != "wait" || Degrade.String() != "degrade" || Reoptimize.String() != "reoptimize" {
		t.Error("policy names")
	}
}

// Feedback wiring: every executed submission lands in the feedback store,
// and the Reoptimize policy replans under the recalibrated model set.
func TestSubmitRecordsFeedback(t *testing.T) {
	sched, q, p := setup(t)
	models := sched.Optimizer.Models()
	rec := feedback.NewRecalibrator(feedback.NewStore(0, nil), feedback.NewDetector(feedback.DriftConfig{}), models)
	sched.Feedback = &feedback.Observer{Recal: rec}

	for _, policy := range []Policy{Wait, Degrade} {
		if _, err := sched.Submit(q, p, cluster.Default(), policy); err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Submit(q, p, lowAvail(), policy); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sched.Submit(q, p, lowAvail(), Reoptimize); err != nil {
		t.Fatal(err)
	}
	if got := rec.Store().Len(); got != 5 {
		t.Fatalf("store holds %d observations, want 5", got)
	}
	for _, o := range rec.Store().Snapshot() {
		if o.Engine != sched.Engine.Name {
			t.Errorf("observation engine = %q, want %q", o.Engine, sched.Engine.Name)
		}
		if o.PredictedSeconds <= 0 || o.ObservedSeconds <= 0 {
			t.Errorf("observation missing predictions: %+v", o)
		}
		if len(o.Operators) == 0 {
			t.Errorf("observation has no operator samples: %+v", o)
		}
	}
}

// Reoptimize consults the optimizer's live models: after a recalibration
// swaps them, the replanned decision is priced by the new set.
func TestReoptimizeUsesRecalibratedModels(t *testing.T) {
	sched, q, p := setup(t)
	flat := cost.NewModels()
	for _, a := range plan.Algos {
		flat.Set(a, cost.ModelFunc{ModelName: "flat-" + a.String(), Fn: func(ss, cs, nc float64) float64 { return 7 }})
	}
	if err := sched.Optimizer.SetModels(flat); err != nil {
		t.Fatal(err)
	}
	out, err := sched.Submit(q, p, lowAvail(), Reoptimize)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil {
		t.Fatal("no execution result")
	}
	// Under the flat model every joint plan of Q3 (two joins) is modeled at
	// 14s; the replan must have been priced by it.
	d, err := sched.Optimizer.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Time != 14 {
		t.Errorf("replanned modeled time = %v, want 14 under the flat model", d.Time)
	}
}

// TestFitsBoundaries pins the admission predicate at its edges: a request
// exactly equal to the offer fits (including the 1e-9 float tolerance on
// the GB axis), and zero-container conditions admit nothing.
func TestFitsBoundaries(t *testing.T) {
	_, _, p := setup(t)
	req := MaxRequested(p)
	if req.Containers < 1 || req.ContainerGB <= 0 {
		t.Fatalf("implausible optimum request: %+v", req)
	}
	exact := cluster.Conditions{
		MinContainers: 1, MaxContainers: req.Containers, ContainerStep: 1,
		MinContainerGB: 1, MaxContainerGB: req.ContainerGB, GBStep: 1,
	}
	if !Fits(p, exact) {
		t.Error("exact-equal offer should fit")
	}
	within := exact
	within.MaxContainerGB = req.ContainerGB - 1e-10 // inside the float tolerance
	if !Fits(p, within) {
		t.Error("offer within the 1e-9 GB tolerance should fit")
	}
	short := exact
	short.MaxContainers = req.Containers - 1
	if Fits(p, short) {
		t.Error("one container short should not fit")
	}
	small := exact
	small.MaxContainerGB = req.ContainerGB - 1e-6
	if Fits(p, small) {
		t.Error("meaningfully smaller containers should not fit")
	}
	if Fits(p, cluster.Conditions{}) {
		t.Error("zero-container conditions should admit nothing")
	}
}

// TestSubmitErrorPaths covers the failure branches of Submit: nil plan,
// invalid available conditions (a zero-container offer fails validation
// before Fits is consulted), Reoptimize without its collaborators, and
// Reoptimize whose planner has no feasible plan because the model set is
// empty.
func TestSubmitErrorPaths(t *testing.T) {
	sched, q, p := setup(t)
	if _, err := sched.Submit(q, nil, cluster.Default(), Wait); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := sched.Submit(q, p, cluster.Conditions{}, Wait); err == nil {
		t.Error("zero-container conditions accepted")
	}
	if _, err := sched.Submit(q, p, lowAvail(), Policy(42)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sched.Submit(nil, p, lowAvail(), Reoptimize); err == nil {
		t.Error("Reoptimize without the logical query accepted")
	}
	noOpt := &Scheduler{Engine: sched.Engine, Pricing: sched.Pricing}
	if _, err := noOpt.Submit(q, p, lowAvail(), Reoptimize); err == nil {
		t.Error("Reoptimize without an optimizer accepted")
	}
	// An optimizer over an empty model set can cost no join at all: the
	// replanning itself must surface the error, not panic or admit.
	empty, err := core.New(cluster.Default(), core.Options{Models: cost.NewModels()})
	if err != nil {
		t.Fatal(err)
	}
	sched.Optimizer = empty
	if _, err := sched.Submit(q, p, lowAvail(), Reoptimize); err == nil {
		t.Error("Reoptimize with no feasible plan accepted")
	}
}

// TestParsePolicy round-trips every policy name and rejects the rest.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{Wait, Degrade, Reoptimize} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, bad := range []string{"", "WAIT", "requeue"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}
