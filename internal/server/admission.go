package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"raqo/internal/telemetry"
)

// errOverloaded reports that a request could not be admitted: every
// in-flight slot is busy and the wait queue is full, or the request's
// queue deadline expired before a slot freed up. The HTTP layer maps it
// to 429 + Retry-After — shedding load instead of collapsing, the serving
// analogue of internal/scheduler's bounded Wait policy.
var errOverloaded = errors.New("server: overloaded, retry later")

// admission bounds the optimizer work in flight. It is the service-side
// restatement of internal/scheduler's admission semantics: a fixed number
// of in-flight slots (the cluster capacity), a bounded FIFO wait queue
// with a per-request deadline (the Wait policy, but with a cap), and
// rejection once the queue is full (429 instead of unbounded queueing —
// the Figure 1 pathology the paper opens with).
//
// FIFO ordering comes from the Go runtime: goroutines blocked sending on
// slots are released in arrival order.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	timeout  time.Duration

	queued atomic.Int64
	gauge  *telemetry.Gauge // mirrors queued; may be nil
}

// newAdmission builds an admission controller with maxInFlight slots, a
// maxQueue-deep wait queue and a per-request queue deadline.
func newAdmission(maxInFlight, maxQueue int, timeout time.Duration, queuedGauge *telemetry.Gauge) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
		gauge:    queuedGauge,
	}
}

// acquire blocks until the request holds an in-flight slot, its queue
// deadline expires (errOverloaded), the queue is already full
// (errOverloaded, immediately), or ctx is cancelled (ctx.Err()). Callers
// must release() after the work when acquire returns nil.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errOverloaded
	}
	if a.gauge != nil {
		a.gauge.Inc()
	}
	defer func() {
		a.queued.Add(-1)
		if a.gauge != nil {
			a.gauge.Dec()
		}
	}()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-timer.C:
		return errOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the slot taken by a successful acquire.
func (a *admission) release() { <-a.slots }
