package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"raqo/internal/arbiter"
	"raqo/internal/feedback"
	"raqo/internal/scheduler"
)

// This file is the HTTP face of internal/arbiter: POST /v1/submit runs
// one query through the shared-cluster workload arbiter on its virtual
// clock, GET /v1/arbiter/stats reports (and optionally drains) the
// simulated cluster. The arbiter is single-threaded by design — its
// optimizer's conditions are re-pointed per admission round — so the
// handlers serialize on arbMu rather than going through the planning
// admission slots.

// SubmitRequest is the body of POST /v1/submit: one workload query for
// the arbiter's shared cluster.
type SubmitRequest struct {
	// Tenant selects the submitting tenant; "" selects "default" (the
	// single tenant configured when Config.ArbiterTenants is nil).
	Tenant string `json:"tenant,omitempty"`
	// Query is a TPC-H evaluation query name (Q12, Q3, Q2, All).
	Query string `json:"query"`
	// Policy is what the arbiter does when the cluster cannot satisfy the
	// submission-time plan: "wait", "degrade" or "reoptimize" (default —
	// adaptive RAQO).
	Policy string `json:"policy,omitempty"`
}

// SubmitResponse is the outcome of one arbitrated query. All times are
// virtual seconds on the arbiter's discrete-event clock; Finish lies in
// the virtual future (the gang stays held, so later submissions contend
// with it).
type SubmitResponse struct {
	Tenant         string  `json:"tenant"`
	Query          string  `json:"query"`
	Policy         string  `json:"policy"`
	ArrivalSeconds float64 `json:"arrivalSeconds"`
	StartSeconds   float64 `json:"startSeconds"`
	FinishSeconds  float64 `json:"finishSeconds"`
	QueueSeconds   float64 `json:"queueSeconds"`
	ExecSeconds    float64 `json:"execSeconds"`
	QueueRunRatio  float64 `json:"queueRunRatio"`
	Replanned      bool    `json:"replanned"`
	Degraded       bool    `json:"degraded"`
	Containers     int     `json:"containers"`
	ContainerGB    float64 `json:"containerGB"`
}

// NewSubmitResponse converts an arbiter outcome to its wire form.
func NewSubmitResponse(o *arbiter.Outcome) SubmitResponse {
	return SubmitResponse{
		Tenant:         o.Tenant,
		Query:          o.Query,
		Policy:         o.Policy.String(),
		ArrivalSeconds: o.Arrival,
		StartSeconds:   o.Start,
		FinishSeconds:  o.Finish,
		QueueSeconds:   o.QueueSeconds,
		ExecSeconds:    o.ExecSeconds,
		QueueRunRatio:  o.Ratio(),
		Replanned:      o.Replanned,
		Degraded:       o.Degraded,
		Containers:     o.Containers,
		ContainerGB:    o.ContainerGB,
	}
}

// ArbiterStatsResponse is the body of GET /v1/arbiter/stats.
type ArbiterStatsResponse struct {
	NowSeconds     float64 `json:"nowSeconds"`
	Completed      int     `json:"completed"`
	InFlight       int     `json:"inFlight"`
	Queued         int     `json:"queued"`
	Rejected       int64   `json:"rejected"`
	Failed         int64   `json:"failed"`
	AdmittedWait   int64   `json:"admittedWait"`
	AdmittedDeg    int64   `json:"admittedDegrade"`
	AdmittedReopt  int64   `json:"admittedReoptimize"`
	Replanned      int64   `json:"replanned"`
	Degraded       int64   `json:"degraded"`
	DegradeStalls  int64   `json:"degradeStalls"`
	Recals         int64   `json:"recalibrations"`
	FreeContainers int     `json:"freeContainers"`
	HeldGB         float64 `json:"heldGB"`
	// Incremental re-optimization answer sources: from-scratch plans,
	// exact-conditions memo hits, patch-validated reuses, and failed patch
	// attempts that fell back to a full plan.
	ReoptFull     int64 `json:"reoptFull"`
	ReoptExact    int64 `json:"reoptExact"`
	ReoptPatched  int64 `json:"reoptPatched"`
	ReoptFallback int64 `json:"reoptFallback"`
}

// NewArbiterStatsResponse converts an arbiter stats snapshot.
func NewArbiterStatsResponse(st arbiter.Stats) ArbiterStatsResponse {
	return ArbiterStatsResponse{
		NowSeconds:     st.Now,
		Completed:      st.Completed,
		InFlight:       st.InFlight,
		Queued:         st.Queued,
		Rejected:       st.Rejected,
		Failed:         st.Failed,
		AdmittedWait:   st.AdmittedWait,
		AdmittedDeg:    st.AdmittedDeg,
		AdmittedReopt:  st.AdmittedReopt,
		Replanned:      st.Replanned,
		Degraded:       st.Degraded,
		DegradeStalls:  st.DegradeStalls,
		Recals:         st.Recals,
		FreeContainers: st.FreeContainers,
		HeldGB:         st.HeldGB,
		ReoptFull:      st.ReoptFull,
		ReoptExact:     st.ReoptExact,
		ReoptPatched:   st.ReoptPatched,
		ReoptFallback:  st.ReoptFallback,
	}
}

// arbiterState bundles the server's workload arbiter with the mutex that
// serializes HTTP access to it.
type arbiterState struct {
	mu  sync.Mutex
	arb *arbiter.Arbiter // guarded by mu
}

// Arbiter returns the server's workload arbiter (primarily for tests).
// Callers must not use it concurrently with the HTTP handlers.
//
//raqolint:ignore locks test-only accessor; the doc contract forbids concurrent use
func (s *Server) Arbiter() *arbiter.Arbiter { return s.arb.arb }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Policy == "" {
		req.Policy = scheduler.Reoptimize.String()
	}
	policy, err := scheduler.ParsePolicy(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing query"))
		return
	}

	s.arb.mu.Lock()
	out, err := s.arb.arb.SubmitWait(req.Tenant, req.Query, policy)
	s.arb.mu.Unlock()
	switch {
	case err == nil:
		writeResult(w, NewSubmitResponse(out))
	case errors.Is(err, arbiter.ErrRejected):
		s.metrics.Rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())+1))
		writeError(w, http.StatusTooManyRequests, err)
	case isUnknownNameError(err):
		writeError(w, http.StatusBadRequest, err)
	default:
		// Execution failure at the chosen resources, or a planning error.
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// isUnknownNameError reports whether a submission failed validation (an
// unknown tenant, query or policy) rather than arbitration.
func isUnknownNameError(err error) bool {
	var ue *arbiter.UnknownError
	return errors.As(err, &ue)
}

func (s *Server) handleArbiterStats(w http.ResponseWriter, r *http.Request) {
	drain := false
	if v := r.URL.Query().Get("drain"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad drain %q: %w", v, err))
			return
		}
		drain = b
	}
	s.arb.mu.Lock()
	defer s.arb.mu.Unlock()
	if drain {
		if err := s.arb.arb.Drain(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeResult(w, NewArbiterStatsResponse(s.arb.arb.Stats()))
}

// defaultArbiterTenants is the single-tenant configuration installed when
// Config.ArbiterTenants is nil.
func defaultArbiterTenants() []arbiter.TenantConfig {
	return []arbiter.TenantConfig{{Name: "default", Weight: 1}}
}

// arbiterObserver wires arbiter completions into the server's feedback
// recalibrator. Observations are stamped with the wall clock, not the
// arbiter's virtual finish time: the serving history store runs on wall
// time, and virtual timestamps near zero would land decades in its past.
func arbiterObserver(rec *feedback.Recalibrator) *feedback.Observer {
	return &feedback.Observer{Recal: rec, Now: func() int64 { return time.Now().Unix() }}
}
