package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"raqo/internal/arbiter"
	"raqo/internal/core"
	"raqo/internal/execsim"
	"raqo/internal/workload"
)

func trainedOptions(t *testing.T) core.Options {
	t.Helper()
	models, err := workload.TrainedModels(execsim.Hive())
	if err != nil {
		t.Fatalf("TrainedModels: %v", err)
	}
	engine := execsim.Hive()
	return core.Options{Models: models, Engine: &engine}
}

func TestSubmitEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Options: trainedOptions(t),
		ArbiterTenants: []arbiter.TenantConfig{
			{Name: "etl", Weight: 2},
			{Name: "bi", Weight: 1, MaxInFlight: 1},
		},
	})

	resp := postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Tenant: "etl", Query: "Q12"})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var out SubmitResponse
	decodeBodyInto(t, resp, &out)
	if out.Policy != "reoptimize" {
		t.Errorf("default policy = %q, want reoptimize", out.Policy)
	}
	if out.ExecSeconds <= 0 || out.FinishSeconds <= out.StartSeconds || out.Containers < 1 {
		t.Errorf("implausible outcome: %+v", out)
	}

	// Validation failures are 400s, not arbitration rejections.
	for _, bad := range []SubmitRequest{
		{Tenant: "nope", Query: "Q12"},
		{Tenant: "etl", Query: "Q99"},
		{Tenant: "etl", Query: "Q12", Policy: "sometimes"},
		{Tenant: "etl"}, // missing query
		{Query: "Q12"},  // "" -> "default", absent under custom tenants
	} {
		resp := postJSON(t, ts.URL+"/v1/submit", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %+v status = %d, want 400", bad, resp.StatusCode)
		}
	}

	// The admitted gang is still held on the virtual cluster.
	resp, err := http.Get(ts.URL + "/v1/arbiter/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var st ArbiterStatsResponse
	decodeBodyInto(t, resp, &st)
	if st.InFlight != 1 || st.AdmittedReopt != 1 {
		t.Errorf("stats after submit: %+v", st)
	}
	if st.FreeContainers != 100-out.Containers {
		t.Errorf("free = %d, want %d", st.FreeContainers, 100-out.Containers)
	}

	// The arbiter metric families are on the shared /metrics exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`raqo_arbiter_admissions_total{policy="reoptimize"}`,
		"raqo_arbiter_pool_containers_in_use",
		"raqo_arbiter_queue_wait_virtual_seconds",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}

	// drain=1 advances the virtual clock past every outstanding finish.
	resp, err = http.Get(ts.URL + "/v1/arbiter/stats?drain=1")
	if err != nil {
		t.Fatalf("GET stats?drain=1: %v", err)
	}
	decodeBodyInto(t, resp, &st)
	if st.InFlight != 0 || st.Completed != 1 || st.FreeContainers != 100 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.NowSeconds < out.FinishSeconds {
		t.Errorf("virtual now %v did not reach the finish %v", st.NowSeconds, out.FinishSeconds)
	}

	resp, err = http.Get(ts.URL + "/v1/arbiter/stats?drain=banana")
	if err != nil {
		t.Fatalf("GET stats?drain=banana: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad drain status = %d, want 400", resp.StatusCode)
	}
}

func TestSubmitOversizedWaitGets429(t *testing.T) {
	// A 1-container pool can never satisfy a wait-policy plan optimized
	// for the full default cluster: backpressure, not a client error.
	_, ts := newTestServer(t, Config{
		Options:         trainedOptions(t),
		ArbiterCapacity: 1,
	})
	resp := postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Query: "Q12", Policy: "wait"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized wait status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// The same query under reoptimize fits the single container.
	resp = postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Query: "Q12", Policy: "reoptimize"})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("reoptimize on tiny pool status = %d: %s", resp.StatusCode, body)
	}
	var out SubmitResponse
	decodeBodyInto(t, resp, &out)
	if out.Containers != 1 {
		t.Errorf("gang = %d containers, want 1", out.Containers)
	}
}
