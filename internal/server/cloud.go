package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"raqo/internal/cloud"
	"raqo/internal/units"
)

// This file is the HTTP face of internal/cloud: POST /v1/cloud/submit
// runs one query through the elastic priced pool on its virtual clock,
// POST /v1/cloud/preempt fires a spot-interruption storm against the
// currently running allocations, and GET /v1/cloud/stats reports (and
// optionally drains) the market. Like the shared-cluster arbiter, the
// cloud arbiter is single-threaded by design, so the handlers serialize
// on a mutex rather than going through the planning admission slots.

// CloudSubmitRequest is the body of POST /v1/cloud/submit.
type CloudSubmitRequest struct {
	// Tenant selects the submitting tenant; "" selects "default" (the
	// single tenant configured when Config.CloudTenants is nil).
	Tenant string `json:"tenant,omitempty"`
	// Query is a TPC-H evaluation query name (Q12, Q3, Q2, All).
	Query string `json:"query"`
	// Recovery is what happens if the allocation is preempted mid-run:
	// "reoptimize" (default), "ondemand" or "degrade".
	Recovery string `json:"recovery,omitempty"`
}

// CloudSubmitResponse is the outcome of one cloud-arbitrated query. All
// times are virtual seconds; Finish lies in the virtual future (the gang
// stays held, so later submissions contend with it).
type CloudSubmitResponse struct {
	Tenant         string    `json:"tenant"`
	Query          string    `json:"query"`
	Recovery       string    `json:"recovery"`
	Class          string    `json:"class"`
	Tier           string    `json:"tier"`
	ArrivalSeconds float64   `json:"arrivalSeconds"`
	StartSeconds   float64   `json:"startSeconds"`
	FinishSeconds  float64   `json:"finishSeconds"`
	QueueSeconds   float64   `json:"queueSeconds"`
	ExecSeconds    float64   `json:"execSeconds"`
	Preemptions    int       `json:"preemptions"`
	OOMRetries     int       `json:"oomRetries"`
	Straggled      bool      `json:"straggled"`
	Degraded       bool      `json:"degraded"`
	Replanned      bool      `json:"replanned"`
	Containers     int       `json:"containers"`
	ContainerGB    float64   `json:"containerGB"`
	BillUSD        units.USD `json:"billUSD"`
}

// NewCloudSubmitResponse converts a cloud outcome to its wire form.
func NewCloudSubmitResponse(o *cloud.Outcome) CloudSubmitResponse {
	return CloudSubmitResponse{
		Tenant:         o.Tenant,
		Query:          o.Query,
		Recovery:       o.Recovery.String(),
		Class:          o.Class,
		Tier:           o.Tier.String(),
		ArrivalSeconds: o.Arrival,
		StartSeconds:   o.Start,
		FinishSeconds:  o.Finish,
		QueueSeconds:   o.QueueSeconds,
		ExecSeconds:    o.ExecSeconds,
		Preemptions:    o.Preemptions,
		OOMRetries:     o.OOMRetries,
		Straggled:      o.Straggled,
		Degraded:       o.Degraded,
		Replanned:      o.Replanned,
		Containers:     o.Containers,
		ContainerGB:    o.ContainerGB,
		BillUSD:        o.BillUSD,
	}
}

// CloudPreemptRequest is the body of POST /v1/cloud/preempt: an
// operator-triggered spot interruption storm.
type CloudPreemptRequest struct {
	// Fraction of currently running spot allocations to revoke, in
	// (0, 1]; revoked queries recover via their submission policies.
	Fraction float64 `json:"fraction"`
}

// CloudPreemptResponse reports a storm's effect.
type CloudPreemptResponse struct {
	Revoked int         `json:"revoked"`
	Stats   cloud.Stats `json:"stats"`
}

// cloudState bundles the server's cloud arbiter with the mutex that
// serializes HTTP access to it.
type cloudState struct {
	mu  sync.Mutex
	arb *cloud.Arbiter // guarded by mu
}

// Cloud returns the server's cloud arbiter (primarily for tests).
// Callers must not use it concurrently with the HTTP handlers.
//
//raqolint:ignore locks test-only accessor; the doc contract forbids concurrent use
func (s *Server) Cloud() *cloud.Arbiter { return s.cld.arb }

func (s *Server) handleCloudSubmit(w http.ResponseWriter, r *http.Request) {
	var req CloudSubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	rec, err := cloud.ParseRecovery(req.Recovery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing query"))
		return
	}

	s.cld.mu.Lock()
	out, err := s.cld.arb.SubmitWait(req.Tenant, req.Query, rec)
	s.cld.mu.Unlock()
	switch {
	case err == nil:
		writeResult(w, NewCloudSubmitResponse(out))
	case errors.Is(err, cloud.ErrRejected):
		s.metrics.Rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())+1))
		writeError(w, http.StatusTooManyRequests, err)
	case isCloudUnknownNameError(err):
		writeError(w, http.StatusBadRequest, err)
	default:
		// Execution failure at the chosen resources, or a planning error.
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// isCloudUnknownNameError reports whether a cloud submission failed
// validation (an unknown tenant or query) rather than arbitration.
func isCloudUnknownNameError(err error) bool {
	var ue *cloud.UnknownError
	return errors.As(err, &ue)
}

func (s *Server) handleCloudPreempt(w http.ResponseWriter, r *http.Request) {
	var req CloudPreemptRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Fraction <= 0 || req.Fraction > 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fraction %g outside (0, 1]", req.Fraction))
		return
	}
	s.cld.mu.Lock()
	defer s.cld.mu.Unlock()
	n, err := s.cld.arb.PreemptFraction(req.Fraction)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeResult(w, CloudPreemptResponse{Revoked: n, Stats: s.cld.arb.Stats()})
}

func (s *Server) handleCloudStats(w http.ResponseWriter, r *http.Request) {
	drain := false
	if v := r.URL.Query().Get("drain"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad drain %q: %w", v, err))
			return
		}
		drain = b
	}
	s.cld.mu.Lock()
	defer s.cld.mu.Unlock()
	if drain {
		if err := s.cld.arb.Drain(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeResult(w, s.cld.arb.Stats())
}

// defaultCloudTenants is the single-tenant configuration installed when
// Config.CloudTenants is nil.
func defaultCloudTenants() []cloud.TenantConfig {
	return []cloud.TenantConfig{{Name: "default", Weight: 1}}
}

// cloudMarket builds the serving market from the config knobs: a
// two-tier 10GB market, with the spot class made elastic when the
// autoscaler is on (floor a quarter of the configured spot count, ceiling
// double it) so scale events have room in both directions.
func cloudMarket(cfg Config) cloud.Market {
	m := cloud.DefaultMarket(cfg.CloudOnDemand, cfg.CloudSpot, cfg.CloudSpotDiscount)
	if cfg.CloudAutoscale && cfg.CloudSpot > 0 {
		m.Classes[1].MinCount = max(1, cfg.CloudSpot/4)
		m.Classes[1].MaxCount = 2 * cfg.CloudSpot
	}
	return m
}

// cloudFaults builds the serving fault processes: seeded spot
// interruption with a mean lifetime of four virtual hours. Seed 0 keeps
// the pool fault-free.
func cloudFaults(cfg Config) cloud.FaultConfig {
	if cfg.CloudSeed == 0 {
		return cloud.FaultConfig{}
	}
	return cloud.FaultConfig{Seed: cfg.CloudSeed, SpotMeanLifeSeconds: 14400}
}
