package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"raqo/internal/cloud"
)

func TestCloudSubmitEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Options: trainedOptions(t),
		CloudTenants: []cloud.TenantConfig{
			{Name: "etl", Weight: 2},
			{Name: "bi", Weight: 1},
		},
	})

	resp := postJSON(t, ts.URL+"/v1/cloud/submit", CloudSubmitRequest{Tenant: "etl", Query: "Q12"})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("cloud submit status = %d: %s", resp.StatusCode, body)
	}
	var out CloudSubmitResponse
	decodeBodyInto(t, resp, &out)
	if out.Recovery != "reoptimize" {
		t.Errorf("default recovery = %q, want reoptimize", out.Recovery)
	}
	if out.ExecSeconds <= 0 || out.FinishSeconds <= out.StartSeconds || out.Containers < 1 {
		t.Errorf("implausible outcome: %+v", out)
	}
	// A fresh idle pool admits on the cheapest $/GB class — the spot tier.
	if out.Tier != "spot" {
		t.Errorf("tier = %q, want spot (cheapest preference on an idle pool)", out.Tier)
	}
	// The tenant bill is attributed when the allocation finishes (or is
	// revoked), so the predicted outcome carries no spend yet.
	if out.BillUSD != 0 {
		t.Errorf("predicted bill = %v, want 0 (billing happens at finish)", out.BillUSD)
	}

	// Validation failures are 400s, not arbitration rejections.
	for _, bad := range []CloudSubmitRequest{
		{Tenant: "nope", Query: "Q12"},
		{Tenant: "etl", Query: "Q99"},
		{Tenant: "etl", Query: "Q12", Recovery: "sometimes"},
		{Tenant: "etl"}, // missing query
		{Query: "Q12"},  // "" -> "default", absent under custom tenants
	} {
		resp := postJSON(t, ts.URL+"/v1/cloud/submit", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("cloud submit %+v status = %d, want 400", bad, resp.StatusCode)
		}
	}

	// The admitted gang is still held on the priced pool.
	resp, err := http.Get(ts.URL + "/v1/cloud/stats")
	if err != nil {
		t.Fatalf("GET cloud stats: %v", err)
	}
	var st cloud.Stats
	decodeBodyInto(t, resp, &st)
	if st.InFlight != 1 || st.Completed != 0 || st.Lost != 0 {
		t.Errorf("stats after submit: %+v", st)
	}
	if st.Capacity != 36 { // default market: 12 on-demand + 24 spot
		t.Errorf("capacity = %d, want 36", st.Capacity)
	}

	// An operator storm revokes the running spot gang; the query recovers
	// via its policy and nothing is lost.
	resp = postJSON(t, ts.URL+"/v1/cloud/preempt", CloudPreemptRequest{Fraction: 1})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("cloud preempt status = %d: %s", resp.StatusCode, body)
	}
	var pre CloudPreemptResponse
	decodeBodyInto(t, resp, &pre)
	if pre.Revoked != 1 {
		t.Errorf("revoked = %d, want 1", pre.Revoked)
	}
	if pre.Stats.Lost != 0 {
		t.Errorf("lost after storm = %d, want 0", pre.Stats.Lost)
	}

	resp = postJSON(t, ts.URL+"/v1/cloud/preempt", CloudPreemptRequest{Fraction: 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fraction status = %d, want 400", resp.StatusCode)
	}

	// The cloud metric families are on the shared /metrics exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`raqo_cloud_admissions_total{tier="spot"}`,
		"raqo_cloud_capacity_containers",
		"raqo_cloud_preemptions_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}

	// drain=1 advances the virtual clock past the recovered finish.
	resp, err = http.Get(ts.URL + "/v1/cloud/stats?drain=1")
	if err != nil {
		t.Fatalf("GET cloud stats?drain=1: %v", err)
	}
	decodeBodyInto(t, resp, &st)
	if st.InFlight != 0 || st.Completed != 1 || st.Lost != 0 || st.Preemptions != 1 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.SpendUSD <= 0 {
		t.Errorf("pool spend = %v, want > 0", st.SpendUSD)
	}

	resp, err = http.Get(ts.URL + "/v1/cloud/stats?drain=banana")
	if err != nil {
		t.Fatalf("GET cloud stats?drain=banana: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad drain status = %d, want 400", resp.StatusCode)
	}
}
