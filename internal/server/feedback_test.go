package server

import (
	"context"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/execsim"
	"raqo/internal/feedback"
	"raqo/internal/plan"
	"raqo/internal/stats"
	"raqo/internal/workload"
)

// validObservation builds one well-formed feedback observation with a
// large relative error (prediction 4x the observation).
func validObservation(i int) feedback.Observation {
	obs := 10 + float64(i)
	return feedback.Observation{
		Signature:        "test-sig",
		Engine:           "hive",
		PredictedSeconds: 4 * obs,
		ObservedSeconds:  obs,
		Operators: []feedback.OperatorSample{{
			Algo: "SMJ", SSGB: 1 + float64(i%7), CSGB: 2 + float64(i%5), NC: 10 + float64(i%11),
			PredictedSeconds: 4 * obs, ObservedSeconds: obs,
		}},
	}
}

func TestFeedbackEndpointAcceptsBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := FeedbackRequest{Observations: []feedback.Observation{
		validObservation(0), validObservation(1), validObservation(2),
	}}
	resp := postJSON(t, ts.URL+"/v1/feedback", req)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var out FeedbackResponse
	decodeBodyInto(t, resp, &out)
	if out.Accepted != 3 || out.Stored != 3 || out.Total != 3 {
		t.Fatalf("response = %+v, want accepted/stored/total = 3", out)
	}

	// The ingested errors must land in the feedback histogram.
	if v, ok := scrapeMetric(t, ts.URL, "raqo_feedback_observations_total"); !ok || v != 3 {
		t.Errorf("raqo_feedback_observations_total = %g (present %v), want 3", v, ok)
	}
	if !strings.Contains(scrapeText(t, ts.URL), "raqo_feedback_rel_error_count 3") {
		t.Errorf("feedback error histogram did not record 3 observations")
	}
}

// scrapeText fetches the raw /metrics exposition.
func scrapeText(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

// TestFeedbackEndpointRejects covers the 400 paths, including the
// all-or-nothing batch rule: one invalid observation rejects the whole
// request and stores nothing.
func TestFeedbackEndpointRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/feedback", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{"observations": `},
		{"unknown field", `{"observations":[],"frobnicate":1}`},
		{"empty batch", `{"observations":[]}`},
		{"missing engine", `{"observations":[{"signature":"x","predictedSeconds":1,"observedSeconds":1}]}`},
		{"nonpositive observed", `{"observations":[{"engine":"hive","predictedSeconds":1,"observedSeconds":0}]}`},
		{"bad operator algo", `{"observations":[{"engine":"hive","observedSeconds":1,"operators":[{"algo":"NLJ","ssGB":1,"csGB":1,"nc":1,"observedSeconds":1}]}]}`},
		{"all or nothing", `{"observations":[{"engine":"hive","predictedSeconds":1,"observedSeconds":1},{"engine":"","observedSeconds":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, b)
			}
			var e ErrorResponse
			decodeBodyInto(t, resp, &e)
			if e.Error == "" {
				t.Fatalf("error body missing error field")
			}
		})
	}
	if n := s.Recalibrator().Store().Len(); n != 0 {
		t.Fatalf("store holds %d observations after rejected batches, want 0", n)
	}
}

func TestModelEndpointReportsSeed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatalf("GET /v1/model: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out ModelResponse
	decodeBodyInto(t, resp, &out)
	if out.Version != 1 {
		t.Errorf("version = %d, want 1 (seed)", out.Version)
	}
	if len(out.Models) == 0 {
		t.Errorf("model response lists no models")
	}
	if out.Recalibrations != 0 || out.Drifted {
		t.Errorf("fresh server reports recalibrations=%d drifted=%v", out.Recalibrations, out.Drifted)
	}
	def := feedback.DriftConfig{}
	if out.DriftThreshold != defWithDefaultsThreshold(def) {
		t.Errorf("driftThreshold = %g, want detector default", out.DriftThreshold)
	}
}

// defWithDefaultsThreshold resolves the detector's default threshold via a
// throwaway detector, so the test tracks the package default.
func defWithDefaultsThreshold(cfg feedback.DriftConfig) float64 {
	return feedback.NewDetector(cfg).Config().Threshold
}

// skewedHiveModels returns the simulator-trained Hive model set with every
// coefficient scaled by factor — a deliberately miscalibrated seed.
func skewedHiveModels(t *testing.T, factor float64) *cost.Models {
	t.Helper()
	truth, err := workload.TrainedModels(execsim.Hive())
	if err != nil {
		t.Fatalf("TrainedModels: %v", err)
	}
	skewed := cost.NewModels()
	for _, a := range plan.Algos {
		m, ok := truth.For(a)
		if !ok {
			continue
		}
		reg, ok := m.(*cost.Regression)
		if !ok {
			t.Fatalf("trained model for %s is not a regression", a)
		}
		lm := &stats.LinearModel{
			Coef:      append([]float64(nil), reg.Linear.Coef...),
			Intercept: reg.Linear.Intercept * factor,
		}
		for i := range lm.Coef {
			lm.Coef[i] *= factor
		}
		skewed.Set(a, cost.NewRegression("skew-"+a.String(), lm))
	}
	return skewed
}

// TestFeedbackDriftRecalibratesOverHTTP drives the whole adaptivity loop
// through the real service: a server seeded with 4x-skewed models and a
// fast background recalibration loop receives accurate feedback over
// POST /v1/feedback; the drift detector fires, the loop retrains, and
// GET /v1/model reports the new version, the advanced cache generation and
// the versioned model names. The journal on disk replays to exactly the
// accepted observations.
func TestFeedbackDriftRecalibratesOverHTTP(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	s, err := New(Config{
		Options:       optionsWithModels(skewedHiveModels(t, 4)),
		JournalPath:   journalPath,
		Drift:         feedback.DriftConfig{MinSamples: 8},
		RecalInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(ctx, "127.0.0.1:0", func(addr string) { addrc <- addr })
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("listener never came up")
	}

	// Accurate feedback: simulator ground truth predicted by the skewed
	// model (relative error ~3, far over the drift threshold). The first 40
	// grid points cover both algorithms well past the training minimum.
	grid := workload.DefaultProfileGrid(execsim.Hive())[:40]
	obs := feedback.SyntheticObservations("hive", s.Recalibrator().Models(), grid)
	resp := postJSON(t, base+"/v1/feedback", FeedbackRequest{Observations: obs})
	var fb FeedbackResponse
	decodeBodyInto(t, resp, &fb)
	if resp.StatusCode != http.StatusOK || fb.Accepted != len(obs) {
		t.Fatalf("feedback post: status %d, response %+v", resp.StatusCode, fb)
	}
	if !fb.Drifted {
		t.Fatalf("detector did not report drift after %d high-error observations", len(obs))
	}

	// The background loop must pick the drift up and swap the model.
	var model ModelResponse
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mresp, err := http.Get(base + "/v1/model")
		if err != nil {
			t.Fatalf("GET /v1/model: %v", err)
		}
		decodeBodyInto(t, mresp, &model)
		if model.Version >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if model.Version < 2 {
		t.Fatalf("model version never advanced past the seed: %+v", model)
	}
	if model.Recalibrations != int64(model.Version-1) {
		t.Errorf("recalibrations = %d, want %d (version-1)", model.Recalibrations, model.Version-1)
	}
	if model.CacheGeneration < 1 {
		t.Errorf("cache generation = %d, want >= 1 after recalibration", model.CacheGeneration)
	}
	if model.TrainedOn < 8 {
		t.Errorf("trainedOn = %d, want >= 8 samples", model.TrainedOn)
	}
	foundVersioned := false
	for _, name := range model.Models {
		if strings.HasPrefix(name, "fb") {
			foundVersioned = true
		}
	}
	if !foundVersioned {
		t.Errorf("no versioned (fb-prefixed) model name in %v", model.Models)
	}

	// The optimizer now plans under the recalibrated set.
	if got := s.opt.Models(); got != s.Recalibrator().Models() {
		t.Errorf("optimizer models were not swapped to the recalibrated set")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve never returned after cancellation (recal loop leak?)")
	}

	replayed, err := feedback.ReadJournal(journalPath)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(replayed) != len(obs) {
		t.Fatalf("journal replays %d observations, want %d", len(replayed), len(obs))
	}
}

// optionsWithModels is a tiny helper keeping the test call sites readable.
func optionsWithModels(m *cost.Models) (o core.Options) {
	o.Models = m
	return o
}
