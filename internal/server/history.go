package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"raqo/internal/history"
)

// HistoryBucket is one aggregate row of GET /v1/history: a step-aligned
// window of one series with count/sum/min/max/mean and sketch quantiles.
type HistoryBucket struct {
	Start int64   `json:"start"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// HistoryResponse is the body of GET /v1/history?series=....
type HistoryResponse struct {
	Series  string          `json:"series"`
	From    int64           `json:"from"`
	To      int64           `json:"to"`
	Step    int64           `json:"step"`
	Buckets []HistoryBucket `json:"buckets"`
}

// HistorySeriesResponse is the body of GET /v1/history without a series
// parameter: every recorded series name plus the store's committed shape.
type HistorySeriesResponse struct {
	Series    []string `json:"series"`
	Points    int64    `json:"points"`
	HighWater int64    `json:"highWater"`
}

// historyInt parses one integer query parameter, empty selecting def.
func historyInt(q string, def int64) (int64, error) {
	if q == "" {
		return def, nil
	}
	return strconv.ParseInt(q, 10, 64)
}

// handleHistory serves range queries over the embedded history store.
// Without ?series= it lists the recorded series; with one it returns the
// downsampled buckets of [from, to) at step resolution (defaults: the
// last hour at 60s). Rollup-backed reads follow the store's outward
// alignment: a partially covered source bucket is included whole.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		writeError(w, http.StatusNotFound, errors.New("history store not configured (start with -history-dir)"))
		return
	}
	qp := r.URL.Query()
	series := qp.Get("series")
	if series == "" {
		hs := s.hist.Stats()
		writeResult(w, HistorySeriesResponse{
			Series:    s.hist.SeriesNames(),
			Points:    hs.CommittedTotal,
			HighWater: hs.HighWater,
		})
		return
	}
	now := time.Now().Unix()
	from, err := historyInt(qp.Get("from"), now-3600)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
		return
	}
	to, err := historyInt(qp.Get("to"), now+1)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad to: %w", err))
		return
	}
	step, err := historyInt(qp.Get("step"), 60)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad step: %w", err))
		return
	}
	rows, err := s.hist.Query(series, from, to, step)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, history.ErrUnknownSeries) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	resp := HistoryResponse{
		Series:  series,
		From:    from,
		To:      to,
		Step:    step,
		Buckets: make([]HistoryBucket, len(rows)),
	}
	for i := range rows {
		b := &rows[i]
		resp.Buckets[i] = HistoryBucket{
			Start: b.Start,
			Count: b.Count,
			Sum:   b.Sum,
			Min:   b.Min,
			Max:   b.Max,
			Mean:  b.Mean(),
			P50:   b.Quantile(0.5),
			P90:   b.Quantile(0.9),
			P99:   b.Quantile(0.99),
		}
	}
	writeResult(w, resp)
}

// gatherHistory samples every telemetry series into the history store at
// one wall-clock instant and commits the batch — one durable block per
// gather tick. Serve runs it on the HistoryInterval ticker; tests call it
// directly with a fixed timestamp. Failures are counted in
// raqo_history_gather_errors_total so a persistently failing gather is
// visible instead of silently dropping history forever.
func (s *Server) gatherHistory(now int64) error {
	if s.hist == nil {
		return nil
	}
	s.metrics.Registry.Visit(func(name string, value float64) {
		s.hist.Record(historySeriesName(name), now, value)
	})
	err := s.hist.Commit()
	if err != nil && s.metrics.GatherErrors != nil {
		s.metrics.GatherErrors.Inc()
	}
	return err
}

// historySeriesName maps a telemetry series name onto one the history
// store accepts: labels (tenant names, endpoints) may carry spaces, which
// history.Series rejects — and a single bad name would stick as a
// registration error and fail every later gather commit.
func historySeriesName(name string) string {
	if !strings.ContainsAny(name, " \n") {
		return name
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' {
			return '_'
		}
		return r
	}, name)
}
