package server

import (
	"fmt"
	"net/http"
	"testing"

	"raqo/internal/feedback"
)

// histBase is a fixed, minute-aligned wall-clock-scale timestamp so
// history assertions never depend on the test host's clock.
const histBase = int64(1_699_999_980)

func getHistory(t *testing.T, base, query string, wantCode int) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/history" + query)
	if err != nil {
		t.Fatalf("GET /v1/history%s: %v", query, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET /v1/history%s status = %d, want %d", query, resp.StatusCode, wantCode)
	}
	return resp
}

func TestHistoryEndpointServesFeedbackSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{HistoryDir: t.TempDir()})

	obs := make([]feedback.Observation, 3)
	for i := range obs {
		obs[i] = validObservation(i)
		obs[i].ObservedAt = histBase + int64(60*i)
	}
	resp := postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Observations: obs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Without ?series= the endpoint lists what the store has seen. The
	// batch was committed before the 200, so the points are visible.
	var list HistorySeriesResponse
	decodeBodyInto(t, getHistory(t, ts.URL, "", http.StatusOK), &list)
	if list.Points == 0 {
		t.Fatalf("no committed points: %+v", list)
	}
	seen := make(map[string]bool, len(list.Series))
	for _, n := range list.Series {
		seen[n] = true
	}
	for _, want := range []string{"feedback.relerr.hive.query", "feedback.relerr.hive.SMJ"} {
		if !seen[want] {
			t.Fatalf("series %q missing from %v", want, list.Series)
		}
	}

	// A minute-step range query returns one bucket per observation, and
	// validObservation's 4x prediction shows up as relative error 3.
	q := fmt.Sprintf("?series=feedback.relerr.hive.query&from=%d&to=%d&step=60", histBase, histBase+180)
	var hr HistoryResponse
	decodeBodyInto(t, getHistory(t, ts.URL, q, http.StatusOK), &hr)
	if len(hr.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3: %+v", len(hr.Buckets), hr.Buckets)
	}
	for i, b := range hr.Buckets {
		if b.Start != histBase+int64(60*i) || b.Count != 1 {
			t.Fatalf("bucket %d = %+v", i, b)
		}
		if b.Mean < 2.9 || b.Mean > 3.1 {
			t.Fatalf("bucket %d mean = %g, want ~3", i, b.Mean)
		}
	}

	// Error mapping: unknown series is 404, a bad range parameter 400.
	getHistory(t, ts.URL, "?series=no.such.series", http.StatusNotFound).Body.Close()
	getHistory(t, ts.URL, "?series=feedback.relerr.hive.query&step=x", http.StatusBadRequest).Body.Close()
	getHistory(t, ts.URL, fmt.Sprintf("?series=feedback.relerr.hive.query&from=%d&to=%d", histBase, histBase), http.StatusBadRequest).Body.Close()
}

func TestHistoryEndpointDisabledWithoutDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	getHistory(t, ts.URL, "", http.StatusNotFound).Body.Close()
}

// TestHistoryGatherSanitizesLabels: telemetry labels (endpoints, tenant
// names) may carry spaces, which history.Series rejects. The gather must
// sanitize the derived series name instead of wedging on a sticky
// registration error that fails every later commit.
func TestHistoryGatherSanitizesLabels(t *testing.T) {
	s, ts := newTestServer(t, Config{HistoryDir: t.TempDir()})
	s.metrics.Requests.With("bad endpoint").Inc()
	if err := s.gatherHistory(histBase); err != nil {
		t.Fatalf("gather with space-bearing label: %v", err)
	}
	// The next gather must also succeed — a sticky Record error would
	// surface here even if the first Commit slipped through.
	if err := s.gatherHistory(histBase + 60); err != nil {
		t.Fatalf("second gather: %v", err)
	}
	q := fmt.Sprintf("?series=raqo_http_requests_total.bad_endpoint&from=%d&to=%d&step=60", histBase, histBase+120)
	var hr HistoryResponse
	decodeBodyInto(t, getHistory(t, ts.URL, q, http.StatusOK), &hr)
	if len(hr.Buckets) != 2 || hr.Buckets[0].Max < 1 {
		t.Fatalf("sanitized series not gathered: %+v", hr.Buckets)
	}
}

func TestHistoryGatherSamplesTelemetry(t *testing.T) {
	s, ts := newTestServer(t, Config{HistoryDir: t.TempDir()})
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// Two gather ticks a minute apart: every telemetry series lands in the
	// store, including the request counter the /healthz call bumped.
	if err := s.gatherHistory(histBase); err != nil {
		t.Fatal(err)
	}
	if err := s.gatherHistory(histBase + 60); err != nil {
		t.Fatal(err)
	}
	q := fmt.Sprintf("?series=raqo_http_requests_total./healthz&from=%d&to=%d&step=60", histBase, histBase+120)
	var hr HistoryResponse
	decodeBodyInto(t, getHistory(t, ts.URL, q, http.StatusOK), &hr)
	if len(hr.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(hr.Buckets), hr.Buckets)
	}
	if hr.Buckets[0].Max < 1 {
		t.Fatalf("request counter not gathered: %+v", hr.Buckets[0])
	}
	// The store's own func-backed metrics round-trip through the gather,
	// so its growth is observable from its own history.
	var list HistorySeriesResponse
	decodeBodyInto(t, getHistory(t, ts.URL, "", http.StatusOK), &list)
	found := false
	for _, n := range list.Series {
		if n == "raqo_history_points_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("store self-metrics missing from %v", list.Series)
	}
}
