package server

import (
	"raqo/internal/core"
	"raqo/internal/resource"
	"raqo/internal/telemetry"
)

// Metrics is the service's metric set over a telemetry.Registry. The HTTP
// fields are only populated by NewMetrics (the serving path);
// NewPlanningMetrics registers just the planner/cache families, which is
// what `raqo batch` prints as its one-line summary.
type Metrics struct {
	Registry *telemetry.Registry

	// Planner work.
	Plans    *telemetry.Counter // raqo_plans_considered_total
	ResIters *telemetry.Counter // raqo_resource_iterations_total

	// HTTP serving (nil under NewPlanningMetrics).
	Requests  *telemetry.CounterVec   // raqo_http_requests_total{endpoint}
	Responses *telemetry.CounterVec   // raqo_http_responses_total{code}
	Latency   *telemetry.HistogramVec // raqo_http_request_seconds{endpoint}
	InFlight  *telemetry.Gauge        // raqo_http_in_flight
	Queued    *telemetry.Gauge        // raqo_http_queued
	Rejected  *telemetry.Counter      // raqo_http_rejected_total
	Cancelled *telemetry.Counter      // raqo_http_cancelled_total
}

// NewPlanningMetrics registers the planner-work counters only.
func NewPlanningMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Registry: reg,
		Plans:    reg.Counter("raqo_plans_considered_total", "Candidate sub-plans priced by the query planner."),
		ResIters: reg.Counter("raqo_resource_iterations_total", "Resource configurations explored by the resource planner."),
	}
}

// NewMetrics registers the full serving metric set.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := NewPlanningMetrics(reg)
	m.Requests = reg.CounterVec("raqo_http_requests_total", "HTTP requests received, by endpoint.", "endpoint")
	m.Responses = reg.CounterVec("raqo_http_responses_total", "HTTP responses sent, by status code.", "code")
	m.Latency = reg.HistogramVec("raqo_http_request_seconds", "HTTP request latency in seconds, by endpoint.", "endpoint", nil)
	m.InFlight = reg.Gauge("raqo_http_in_flight", "Requests currently holding an admission slot.")
	m.Queued = reg.Gauge("raqo_http_queued", "Requests waiting in the admission queue.")
	m.Rejected = reg.Counter("raqo_http_rejected_total", "Requests rejected with 429 by admission control.")
	m.Cancelled = reg.Counter("raqo_http_cancelled_total", "Requests abandoned by the client before completion.")
	return m
}

// ObserveDecision accumulates one decision's planner-work counters.
func (m *Metrics) ObserveDecision(d *core.Decision) {
	if d == nil {
		return
	}
	m.Plans.Add(int64(d.PlansConsidered))
	m.ResIters.Add(d.ResourceIterations)
}

// AttachCache exports the resource-plan cache's stats snapshot as
// func-backed metrics, read live at scrape time.
func (m *Metrics) AttachCache(c *resource.Cache) {
	if c == nil {
		return
	}
	reg := m.Registry
	reg.CounterFunc("raqo_resource_cache_hits_total", "Resource-plan cache hits (including singleflight-deduped loads).",
		func() float64 { return float64(c.Stats().Hits) })
	reg.CounterFunc("raqo_resource_cache_misses_total", "Resource-plan cache misses that ran the inner planner.",
		func() float64 { return float64(c.Stats().Misses) })
	reg.CounterFunc("raqo_resource_cache_deduped_total", "Concurrent misses coalesced onto an in-flight load.",
		func() float64 { return float64(c.Stats().Deduped) })
	reg.CounterFunc("raqo_resource_cache_evictions_total", "Cached configurations dropped by Reset.",
		func() float64 { return float64(c.Stats().Evictions) })
	reg.GaugeFunc("raqo_resource_cache_entries", "Configurations currently cached.",
		func() float64 { return float64(c.Stats().Entries) })
}

// AttachMemo exports the operator-cost memo's counters.
func (m *Metrics) AttachMemo(cm *core.CostMemo) {
	if cm == nil {
		return
	}
	reg := m.Registry
	reg.CounterFunc("raqo_cost_memo_hits_total", "Operator-cost memo hits.",
		func() float64 { return float64(cm.Hits()) })
	reg.CounterFunc("raqo_cost_memo_misses_total", "Operator-cost memo misses.",
		func() float64 { return float64(cm.Misses()) })
	reg.GaugeFunc("raqo_cost_memo_entries", "Operator costings currently memoized.",
		func() float64 { return float64(cm.Size()) })
}
