package server

import (
	"raqo/internal/core"
	"raqo/internal/feedback"
	"raqo/internal/history"
	"raqo/internal/resource"
	"raqo/internal/telemetry"
)

// Metrics is the service's metric set over a telemetry.Registry. The HTTP
// fields are only populated by NewMetrics (the serving path);
// NewPlanningMetrics registers just the planner/cache families, which is
// what `raqo batch` prints as its one-line summary.
type Metrics struct {
	Registry *telemetry.Registry

	// Planner work.
	Plans    *telemetry.Counter // raqo_plans_considered_total
	ResIters *telemetry.Counter // raqo_resource_iterations_total

	// HTTP serving (nil under NewPlanningMetrics).
	Requests  *telemetry.CounterVec   // raqo_http_requests_total{endpoint}
	Responses *telemetry.CounterVec   // raqo_http_responses_total{code}
	Latency   *telemetry.HistogramVec // raqo_http_request_seconds{endpoint}
	InFlight  *telemetry.Gauge        // raqo_http_in_flight
	Queued    *telemetry.Gauge        // raqo_http_queued
	Rejected  *telemetry.Counter      // raqo_http_rejected_total
	Cancelled *telemetry.Counter      // raqo_http_cancelled_total

	// Feedback loop (nil under NewPlanningMetrics).
	FeedbackError *telemetry.Histogram // raqo_feedback_rel_error
	RecalDuration *telemetry.Histogram // raqo_recalibration_seconds

	// History gather loop (nil under NewPlanningMetrics).
	GatherErrors *telemetry.Counter // raqo_history_gather_errors_total
}

// NewPlanningMetrics registers the planner-work counters only.
func NewPlanningMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Registry: reg,
		Plans:    reg.Counter("raqo_plans_considered_total", "Candidate sub-plans priced by the query planner."),
		ResIters: reg.Counter("raqo_resource_iterations_total", "Resource configurations explored by the resource planner."),
	}
}

// NewMetrics registers the full serving metric set.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := NewPlanningMetrics(reg)
	m.Requests = reg.CounterVec("raqo_http_requests_total", "HTTP requests received, by endpoint.", "endpoint")
	m.Responses = reg.CounterVec("raqo_http_responses_total", "HTTP responses sent, by status code.", "code")
	m.Latency = reg.HistogramVec("raqo_http_request_seconds", "HTTP request latency in seconds, by endpoint.", "endpoint", nil)
	m.InFlight = reg.Gauge("raqo_http_in_flight", "Requests currently holding an admission slot.")
	m.Queued = reg.Gauge("raqo_http_queued", "Requests waiting in the admission queue.")
	m.Rejected = reg.Counter("raqo_http_rejected_total", "Requests rejected with 429 by admission control.")
	m.Cancelled = reg.Counter("raqo_http_cancelled_total", "Requests abandoned by the client before completion.")
	m.FeedbackError = reg.Histogram("raqo_feedback_rel_error",
		"Relative prediction error |predicted-observed|/observed of ingested feedback.",
		[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
	m.RecalDuration = reg.Histogram("raqo_recalibration_seconds",
		"Wall time of one online cost-model recalibration.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	m.GatherErrors = reg.Counter("raqo_history_gather_errors_total",
		"Telemetry gather ticks that failed to commit to the history store.")
	return m
}

// ObserveDecision accumulates one decision's planner-work counters.
func (m *Metrics) ObserveDecision(d *core.Decision) {
	if d == nil {
		return
	}
	m.Plans.Add(int64(d.PlansConsidered))
	m.ResIters.Add(d.ResourceIterations)
}

// AttachCache exports the resource-plan cache's stats snapshot as
// func-backed metrics, read live at scrape time.
func (m *Metrics) AttachCache(c *resource.Cache) {
	if c == nil {
		return
	}
	reg := m.Registry
	reg.CounterFunc("raqo_resource_cache_hits_total", "Resource-plan cache hits (including singleflight-deduped loads).",
		func() float64 { return float64(c.Stats().Hits) })
	reg.CounterFunc("raqo_resource_cache_misses_total", "Resource-plan cache misses that ran the inner planner.",
		func() float64 { return float64(c.Stats().Misses) })
	reg.CounterFunc("raqo_resource_cache_deduped_total", "Concurrent misses coalesced onto an in-flight load.",
		func() float64 { return float64(c.Stats().Deduped) })
	reg.CounterFunc("raqo_resource_cache_evictions_total", "Cached configurations dropped by Reset.",
		func() float64 { return float64(c.Stats().Evictions) })
	reg.GaugeFunc("raqo_resource_cache_entries", "Configurations currently cached.",
		func() float64 { return float64(c.Stats().Entries) })
}

// AttachFeedback exports the feedback subsystem's state as func-backed
// metrics: live model version, observation volume, recalibration count and
// latest duration.
func (m *Metrics) AttachFeedback(rec *feedback.Recalibrator) {
	if rec == nil {
		return
	}
	reg := m.Registry
	reg.GaugeFunc("raqo_model_version", "Version of the live cost-model set (1 = seed, +1 per recalibration).",
		func() float64 { return float64(rec.Current().Version) })
	reg.CounterFunc("raqo_feedback_observations_total", "Execution observations ever accepted into the feedback store.",
		func() float64 { return float64(rec.Store().Total()) })
	reg.GaugeFunc("raqo_feedback_store_entries", "Observations currently held in the feedback ring.",
		func() float64 { return float64(rec.Store().Len()) })
	reg.CounterFunc("raqo_recalibrations_total", "Completed online cost-model recalibrations.",
		func() float64 { return float64(rec.Recalibrations()) })
	reg.GaugeFunc("raqo_model_drifted", "1 when the drift detector currently reports drift, else 0.",
		func() float64 {
			if rec.Detector().Drifted() {
				return 1
			}
			return 0
		})
}

// AttachHistory exports the history store's shape as func-backed metrics,
// read live at scrape time. (These series are themselves gathered back
// into the store by the periodic telemetry sweep, so the store's growth
// is observable from its own history.)
func (m *Metrics) AttachHistory(st *history.Store) {
	if st == nil {
		return
	}
	reg := m.Registry
	reg.GaugeFunc("raqo_history_series", "Series registered in the history store.",
		func() float64 { return float64(st.Stats().Series) })
	reg.CounterFunc("raqo_history_points_total", "Points committed to the history store this process lifetime.",
		func() float64 { return float64(st.Stats().CommittedTotal) })
	reg.GaugeFunc("raqo_history_segments", "Sealed raw segment files currently on disk.",
		func() float64 { return float64(st.Stats().Segments) })
	reg.GaugeFunc("raqo_history_segment_bytes", "Bytes across raw segment files (sealed + active).",
		func() float64 { return float64(st.Stats().SegmentBytes) })
	reg.CounterFunc("raqo_history_retained_total", "Raw segments deleted by retention.",
		func() float64 { return float64(st.Stats().RetainedTotal) })
}

// AttachMemo exports the operator-cost memo's counters.
func (m *Metrics) AttachMemo(cm *core.CostMemo) {
	if cm == nil {
		return
	}
	reg := m.Registry
	reg.CounterFunc("raqo_cost_memo_hits_total", "Operator-cost memo hits.",
		func() float64 { return float64(cm.Hits()) })
	reg.CounterFunc("raqo_cost_memo_misses_total", "Operator-cost memo misses.",
		func() float64 { return float64(cm.Misses()) })
	reg.GaugeFunc("raqo_cost_memo_entries", "Operator costings currently memoized.",
		func() float64 { return float64(cm.Size()) })
}
