package server

import (
	"encoding/json"
	"io"

	"raqo/internal/core"
	"raqo/internal/feedback"
	"raqo/internal/plan"
	"raqo/internal/resource"
	"raqo/internal/units"
)

// This file defines the service's wire types. They are shared with
// cmd/raqo's -json output so the CLI and the API emit byte-identical
// machine-readable results through the one encoder below.

// OptimizeRequest is the body of POST /v1/optimize. Exactly one of Query
// (a TPC-H evaluation query name: Q12, Q3, Q2, All) or Relations (an
// explicit relation list validated against the schema's join graph) names
// the logical query.
type OptimizeRequest struct {
	Query     string   `json:"query,omitempty"`
	Relations []string `json:"relations,omitempty"`
	// Mode is one of the Section IV use-case modes: "joint" (default),
	// "fixed", "budget" or "price".
	Mode string `json:"mode,omitempty"`
	// Containers/ContainerGB are the fixed configuration (fixed mode) or
	// the tenant quota (budget mode).
	Containers  int     `json:"containers,omitempty"`
	ContainerGB float64 `json:"containerGB,omitempty"`
	// BudgetDollars is the price mode's monetary budget.
	BudgetDollars units.USD `json:"budgetDollars,omitempty"`
}

// OptimizeResponse is one joint query/resource decision on the wire. Plan
// uses plan.Node's JSON form, so it round-trips through plan.Decode
// against the same schema.
type OptimizeResponse struct {
	Query              string     `json:"query"`
	Mode               string     `json:"mode"`
	Planner            string     `json:"planner"`
	TimeSeconds        float64    `json:"timeSeconds"`
	MoneyDollars       units.USD  `json:"moneyDollars"`
	PlansConsidered    int        `json:"plansConsidered"`
	ResourceIterations int64      `json:"resourceIterations"`
	ElapsedMicros      int64      `json:"elapsedMicros"`
	Plan               *plan.Node `json:"plan"`
}

// NewOptimizeResponse converts a core Decision into its wire form.
func NewOptimizeResponse(query, mode string, planner core.PlannerKind, d *core.Decision) OptimizeResponse {
	return OptimizeResponse{
		Query:              query,
		Mode:               mode,
		Planner:            planner.String(),
		TimeSeconds:        d.Time,
		MoneyDollars:       d.Money,
		PlansConsidered:    d.PlansConsidered,
		ResourceIterations: d.ResourceIterations,
		ElapsedMicros:      d.Elapsed.Microseconds(),
		Plan:               d.Plan,
	}
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Queries []string `json:"queries"`
	// Parallel bounds inter-query concurrency; 0 selects NumCPU.
	Parallel int `json:"parallel,omitempty"`
}

// CacheStats is the resource-plan cache snapshot on the wire.
type CacheStats struct {
	Hits       int64  `json:"hits"`
	Misses     int64  `json:"misses"`
	Deduped    int64  `json:"deduped"`
	Evictions  int64  `json:"evictions"`
	Entries    int    `json:"entries"`
	Generation uint64 `json:"generation"`
}

// NewCacheStats converts a resource.Stats snapshot.
func NewCacheStats(s resource.Stats) CacheStats {
	return CacheStats{
		Hits:       s.Hits,
		Misses:     s.Misses,
		Deduped:    s.Deduped,
		Evictions:  s.Evictions,
		Entries:    s.Entries,
		Generation: s.Generation,
	}
}

// MemoStats is the operator-cost memo snapshot on the wire.
type MemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// BatchResponse is the body of a successful POST /v1/batch: per-query
// decisions in request order plus the planning-cache state after the
// batch (the cross-query warm-cache effect of Figures 14/15b).
type BatchResponse struct {
	Results []OptimizeResponse `json:"results"`
	Cache   *CacheStats        `json:"cache,omitempty"`
	Memo    *MemoStats         `json:"memo,omitempty"`
}

// ExplainOperator is one operator of the /v1/explain cost breakdown.
type ExplainOperator struct {
	Algo           string    `json:"algo"`
	Relations      []string  `json:"relations"`
	Containers     int       `json:"containers"`
	ContainerGB    float64   `json:"containerGB"`
	BuildSideGB    float64   `json:"buildSideGB"`
	ModeledSeconds float64   `json:"modeledSeconds"`
	ModeledDollars units.USD `json:"modeledDollars"`
	// AltAlgo/AltSeconds price the other implementation at the same
	// resources, when a model for it exists.
	AltAlgo    string  `json:"altAlgo,omitempty"`
	AltSeconds float64 `json:"altSeconds,omitempty"`
}

// ExplainResponse is the body of GET /v1/explain/{query}: the decision,
// its per-operator cost breakdown, and the rendered plan tree.
type ExplainResponse struct {
	OptimizeResponse
	Operators []ExplainOperator `json:"operators"`
	PlanTree  string            `json:"planTree"`
}

// NewExplainOperators converts core's structured explanation.
func NewExplainOperators(ops []core.OperatorExplain) []ExplainOperator {
	out := make([]ExplainOperator, 0, len(ops))
	for _, op := range ops {
		e := ExplainOperator{
			Algo:           op.Algo.String(),
			Relations:      op.Relations,
			Containers:     op.Res.Containers,
			ContainerGB:    op.Res.ContainerGB,
			BuildSideGB:    op.BuildSideGB,
			ModeledSeconds: op.Seconds,
			ModeledDollars: op.Money,
		}
		if op.AltOK {
			e.AltAlgo = op.AltAlgo.String()
			e.AltSeconds = op.AltSeconds
		}
		out = append(out, e)
	}
	return out
}

// FeedbackRequest is the body of POST /v1/feedback: a batch of execution
// observations. The batch is validated as a whole before any observation
// is stored.
type FeedbackRequest struct {
	Observations []feedback.Observation `json:"observations"`
}

// FeedbackResponse acknowledges accepted feedback and reports the store
// and drift state after ingestion.
type FeedbackResponse struct {
	Accepted int   `json:"accepted"` // observations in this request
	Stored   int   `json:"stored"`   // observations currently in the ring
	Total    int64 `json:"total"`    // observations ever accepted
	Drifted  bool  `json:"drifted"`  // drift detector state after ingestion
}

// ModelResponse is the body of GET /v1/model: the live cost-model version
// and the drift detector's per-class error stats.
type ModelResponse struct {
	Version         uint64                `json:"version"`
	Models          []string              `json:"models"`    // sorted model names
	TrainedOn       int                   `json:"trainedOn"` // samples behind this version (0 = seed)
	Recalibrations  int64                 `json:"recalibrations"`
	LastRecalSecs   float64               `json:"lastRecalSeconds"`
	Drifted         bool                  `json:"drifted"`
	DriftThreshold  float64               `json:"driftThreshold"`
	DriftQuantile   float64               `json:"driftQuantile"`
	ErrorStats      []feedback.ClassStats `json:"errorStats"`
	StoredFeedback  int                   `json:"storedFeedback"`
	TotalFeedback   int64                 `json:"totalFeedback"`
	CacheGeneration uint64                `json:"cacheGeneration"`
}

// NewModelResponse snapshots a recalibrator for the wire.
func NewModelResponse(rec *feedback.Recalibrator) ModelResponse {
	info := rec.Current()
	cfg := rec.Detector().Config()
	resp := ModelResponse{
		Version:        info.Version,
		Models:         info.ModelNames(),
		TrainedOn:      info.TrainedOn,
		Recalibrations: rec.Recalibrations(),
		LastRecalSecs:  rec.LastDurationSeconds(),
		Drifted:        rec.Detector().Drifted(),
		DriftThreshold: cfg.Threshold,
		DriftQuantile:  cfg.Quantile,
		ErrorStats:     rec.Detector().Stats(),
		StoredFeedback: rec.Store().Len(),
		TotalFeedback:  rec.Store().Total(),
	}
	if rec.Cache != nil {
		resp.CacheGeneration = rec.Cache.Stats().Generation
	}
	return resp
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WriteJSON is the one encoder both the HTTP handlers and the CLI -json
// flags use: two-space indented, trailing newline, HTML escaping off so
// plan trees and query names render verbatim.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}
