// Package server turns the RAQO library into the long-running optimizer
// service the paper's Figure 8 architecture describes: a component inside
// a shared big-data system that answers joint (plan, resource) requests
// continuously. A process-wide warm resource-plan cache and operator-cost
// memo realize the cross-query reuse of Figures 14/15b in serving;
// admission control bounds in-flight planning work (bounded slots + FIFO
// wait queue + 429 on overload, the serving restatement of
// internal/scheduler's policies); request contexts are threaded into the
// planner search loops so abandoned requests stop burning CPU.
//
// Endpoints:
//
//	POST /v1/optimize         one query, modes joint|fixed|budget|price
//	POST /v1/batch            concurrent workload via core.OptimizeBatch
//	GET  /v1/explain/{query}  plan tree + resources + cost breakdown
//	POST /v1/feedback         execution observations into the feedback store
//	GET  /v1/model            live cost-model version + drift/error stats
//	POST /v1/submit           one workload query through the shared-cluster arbiter
//	GET  /v1/arbiter/stats    arbiter state; ?drain=1 drains the virtual cluster
//	POST /v1/cloud/submit     one query through the elastic priced cloud pool
//	POST /v1/cloud/preempt    revoke a fraction of running spot allocations
//	GET  /v1/cloud/stats      cloud market state; ?drain=1 drains the pool
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition (internal/telemetry)
//
// The server also closes the execution-feedback loop (internal/feedback):
// observations posted to /v1/feedback accumulate in a bounded store
// (optionally journaled to JSONL), a background goroutine watches the
// drift detector, and on drift the cost models are retrained and swapped
// atomically — subsequent optimize calls plan under the recalibrated,
// versioned model set and the resource-plan cache is invalidated once per
// swap.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"raqo/internal/arbiter"
	"raqo/internal/catalog"
	"raqo/internal/cloud"
	"raqo/internal/cluster"
	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/execsim"
	"raqo/internal/feedback"
	"raqo/internal/history"
	"raqo/internal/plan"
	"raqo/internal/resource"
	"raqo/internal/telemetry"
	"raqo/internal/workload"
)

// statusClientClosedRequest is nginx's convention for "client went away
// before the response"; the body is never seen, but the access log and
// the response-code metric are.
const statusClientClosedRequest = 499

// Config configures a Server. Zero values select serving defaults.
type Config struct {
	// SF is the TPC-H scale factor of the served schema; 0 selects 100
	// (the paper's evaluation scale).
	SF float64
	// Conditions is the cluster the optimizer plans against; zero selects
	// cluster.Default().
	Conditions cluster.Conditions
	// Options configures the shared optimizer. When Options.Resource is
	// nil a process-wide resource-plan cache (nearest-neighbor,
	// CacheThresholdGB) is installed; MemoizeCosts is forced on so the
	// cost memo stays warm across requests.
	Options core.Options
	// CacheThresholdGB is the installed cache's data-delta threshold;
	// 0 selects 1 GB.
	CacheThresholdGB float64
	// DisableCostMemo turns off the shared operator-cost memo (on by
	// default in serving so repeated sub-problems skip costing entirely).
	// With the memo off every costing consults the resource-plan cache,
	// which is the configuration that exercises the cache's concurrency.
	DisableCostMemo bool

	// MaxInFlight bounds concurrently planning requests; 0 selects
	// max(2, NumCPU).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue; 0 selects 64.
	MaxQueue int
	// QueueTimeout is the per-request admission deadline; 0 selects 2s.
	QueueTimeout time.Duration
	// RequestTimeout bounds one request's planning time; 0 selects 30s.
	RequestTimeout time.Duration
	// RetryAfter is advertised on 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// DrainTimeout bounds graceful shutdown; 0 selects 10s.
	DrainTimeout time.Duration

	// JournalPath, when set, opens (or appends to) a JSONL feedback
	// journal so accumulated observations survive restarts.
	JournalPath string
	// JournalMaxBytes rotates the feedback journal once the active file
	// would exceed this size; 0 disables rotation (one unbounded file).
	JournalMaxBytes int64
	// JournalMaxFiles bounds how many rotated journal files are kept
	// (oldest pruned first); 0 keeps all rotations.
	JournalMaxFiles int
	// FeedbackCapacity bounds the in-memory feedback ring; 0 selects
	// feedback.DefaultStoreCapacity.
	FeedbackCapacity int
	// Drift tunes the drift detector (zero fields select its defaults).
	Drift feedback.DriftConfig
	// RecalInterval is how often the background loop checks for drift and
	// recalibrates; 0 selects 30s, negative disables the loop (feedback
	// still accumulates and /v1/model still reports drift).
	RecalInterval time.Duration

	// HistoryDir, when set, opens an embedded time-series history store
	// there (internal/history): every telemetry series is gathered into it
	// on the HistoryInterval ticker, the drift detector streams its
	// per-class error series in (enabling history-backed long-horizon
	// drift detection), and GET /v1/history serves time-range queries.
	// Empty disables history entirely.
	HistoryDir string
	// HistoryRetention is the store's raw-segment retention in seconds;
	// 0 selects the store default (rollups retain far longer).
	HistoryRetention int64
	// HistoryInterval is the telemetry gather period; 0 selects 10s,
	// negative disables the gather loop (detector series still stream in
	// and are committed with each feedback batch).
	HistoryInterval time.Duration

	// ArbiterCapacity is the container count of the simulated shared pool
	// behind POST /v1/submit; 0 selects 100 (the paper's cluster scale).
	ArbiterCapacity int
	// ArbiterTenants configures the workload arbiter's tenants; nil
	// selects a single unlimited "default" tenant.
	ArbiterTenants []arbiter.TenantConfig
	// ArbiterRecalEvery asks the arbiter to offer the recalibrator a drift
	// check every N completions; 0 disables (the background RecalInterval
	// loop still covers drift from posted feedback).
	ArbiterRecalEvery int

	// CloudOnDemand and CloudSpot size the two-tier priced market behind
	// POST /v1/cloud/submit; 0 selects 12 on-demand and 24 spot 10GB
	// containers (CloudSpot < 0 omits the spot class).
	CloudOnDemand int
	CloudSpot     int
	// CloudSpotDiscount is the fraction taken off the on-demand rate for
	// spot capacity; 0 selects 0.7 (spot costs 30% of on-demand).
	CloudSpotDiscount float64
	// CloudSeed seeds the cloud pool's spot-interruption process; 0 runs
	// the pool fault-free (storms are still available via
	// POST /v1/cloud/preempt).
	CloudSeed int64
	// CloudAutoscale puts the spot class under the budget-aware
	// autoscaler, elastic between a quarter and double CloudSpot.
	CloudAutoscale bool
	// CloudTenants configures the cloud arbiter's tenants; nil selects a
	// single unlimited "default" tenant.
	CloudTenants []cloud.TenantConfig
}

func (c Config) withDefaults() Config {
	if c.SF == 0 {
		c.SF = 100
	}
	if c.Conditions == (cluster.Conditions{}) {
		c.Conditions = cluster.Default()
	}
	if c.CacheThresholdGB == 0 {
		c.CacheThresholdGB = 1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = max(2, runtime.NumCPU())
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RecalInterval == 0 {
		c.RecalInterval = 30 * time.Second
	}
	if c.HistoryInterval == 0 {
		c.HistoryInterval = 10 * time.Second
	}
	if c.ArbiterCapacity == 0 {
		c.ArbiterCapacity = 100
	}
	if len(c.ArbiterTenants) == 0 {
		c.ArbiterTenants = defaultArbiterTenants()
	}
	if c.CloudOnDemand == 0 {
		c.CloudOnDemand = 12
	}
	if c.CloudSpot == 0 {
		c.CloudSpot = 24
	}
	if c.CloudSpotDiscount == 0 {
		c.CloudSpotDiscount = 0.7
	}
	if len(c.CloudTenants) == 0 {
		c.CloudTenants = defaultCloudTenants()
	}
	return c
}

// Server is the RAQO optimizer service.
type Server struct {
	cfg     Config
	sch     *catalog.Schema
	opt     *core.Optimizer
	cache   *resource.Cache // nil when the caller supplied Options.Resource
	metrics *Metrics
	admit   *admission
	mux     *http.ServeMux
	start   time.Time
	rec     *feedback.Recalibrator
	journal *feedback.Journal // nil unless Config.JournalPath was set
	hist    *history.Store    // nil unless Config.HistoryDir was set
	arb     *arbiterState
	cld     *cloudState
}

// New builds a Server: schema, shared warm optimizer, metric registry and
// routes. The returned server is ready to serve via Handler or Serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := cfg.Options
	var cache *resource.Cache
	if opts.Resource == nil {
		cache = &resource.Cache{
			Inner:       &resource.HillClimb{},
			Mode:        resource.NearestNeighbor,
			ThresholdGB: cfg.CacheThresholdGB,
		}
		opts.Resource = cache
	} else if c, ok := opts.Resource.(*resource.Cache); ok {
		cache = c
	}
	opts.MemoizeCosts = !cfg.DisableCostMemo
	opt, err := core.New(cfg.Conditions, opts)
	if err != nil {
		return nil, err
	}

	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	m.AttachCache(cache)
	m.AttachMemo(opt.Memo())

	var journal *feedback.Journal
	if cfg.JournalPath != "" {
		journal, err = feedback.OpenJournalConfig(cfg.JournalPath, feedback.JournalConfig{
			MaxBytes: cfg.JournalMaxBytes,
			MaxFiles: cfg.JournalMaxFiles,
		})
		if err != nil {
			return nil, err
		}
	}
	rec := feedback.NewRecalibrator(
		feedback.NewStore(cfg.FeedbackCapacity, journal),
		feedback.NewDetector(cfg.Drift),
		opt.Models(),
	)
	rec.Cache = cache
	// On every swap the optimizer starts planning under the new versioned
	// set (SetModels also resets the cost memo), and the recalibration's
	// wall time lands in the duration histogram.
	rec.OnSwap(func(r feedback.Recalibration, info *feedback.ModelInfo) {
		_ = opt.SetModels(info.Models)
		m.RecalDuration.Observe(r.Duration.Seconds())
	})
	m.AttachFeedback(rec)

	// The history store (when configured) closes the long-horizon loop:
	// the detector streams every error sample in, and its baseline reads
	// come back out of the rollups.
	var hist *history.Store
	if cfg.HistoryDir != "" {
		hist, err = history.Open(cfg.HistoryDir, history.Config{RawRetention: cfg.HistoryRetention})
		if err != nil {
			if journal != nil {
				_ = journal.Close()
			}
			return nil, err
		}
		rec.Detector().SetRecorder(hist)
		rec.Detector().SetHistory(hist, feedback.LongHorizonConfig{})
		m.AttachHistory(hist)
	}

	sch := catalog.TPCH(cfg.SF)
	// The arbiter owns a second optimizer: its conditions are re-pointed
	// per admission round, which the shared serving optimizer (planning
	// under the fixed Config.Conditions) must never see. Both follow the
	// same live model set via OnSwap below.
	engine := execsim.Hive()
	arbOpt, err := core.New(cfg.Conditions, core.Options{
		Models:       opt.Models(),
		Engine:       &engine,
		MemoizeCosts: true,
		Workers:      cfg.Options.Workers,
	})
	if err != nil {
		return nil, err
	}
	rec.OnSwap(func(_ feedback.Recalibration, info *feedback.ModelInfo) {
		_ = arbOpt.SetModels(info.Models)
	})
	queries, err := workload.TPCHQueries(sch)
	if err != nil {
		return nil, err
	}
	arb, err := arbiter.New(arbiter.Config{
		Capacity:   cfg.ArbiterCapacity,
		Base:       cfg.Conditions,
		Engine:     engine,
		Pricing:    cost.DefaultPricing(),
		Optimizer:  arbOpt,
		Workers:    cfg.Options.Workers,
		Queries:    queries,
		Tenants:    cfg.ArbiterTenants,
		Feedback:   arbiterObserver(rec),
		RecalEvery: cfg.ArbiterRecalEvery,
		Metrics:    arbiter.NewMetrics(reg),
	})
	if err != nil {
		return nil, err
	}

	// The cloud arbiter owns a third optimizer for the same reason the
	// workload arbiter owns its second: admission re-points conditions per
	// class, which no concurrent planner must observe. It too follows the
	// live model set.
	cloudOpt, err := core.New(cfg.Conditions, core.Options{
		Models:       opt.Models(),
		Engine:       &engine,
		MemoizeCosts: true,
		Workers:      cfg.Options.Workers,
	})
	if err != nil {
		return nil, err
	}
	rec.OnSwap(func(_ feedback.Recalibration, info *feedback.ModelInfo) {
		_ = cloudOpt.SetModels(info.Models)
	})
	cld, err := cloud.New(cloud.Config{
		Market:     cloudMarket(cfg),
		Base:       cfg.Conditions,
		Engine:     engine,
		Pricing:    cost.DefaultPricing(),
		Optimizer:  cloudOpt,
		Workers:    cfg.Options.Workers,
		Queries:    queries,
		Tenants:    cfg.CloudTenants,
		Faults:     cloudFaults(cfg),
		Autoscaler: cloud.AutoscalerConfig{Enabled: cfg.CloudAutoscale},
		Metrics:    cloud.NewMetrics(reg),
	})
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:     cfg,
		sch:     sch,
		opt:     opt,
		cache:   cache,
		metrics: m,
		admit:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueTimeout, m.Queued),
		start:   time.Now(),
		rec:     rec,
		journal: journal,
		hist:    hist,
		arb:     &arbiterState{arb: arb},
		cld:     &cloudState{arb: cld},
	}
	reg.GaugeFunc("raqo_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.instrument("/v1/optimize", s.handleOptimize))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.HandleFunc("GET /v1/explain/{query}", s.instrument("/v1/explain", s.handleExplain))
	mux.HandleFunc("POST /v1/feedback", s.instrument("/v1/feedback", s.handleFeedback))
	mux.HandleFunc("POST /v1/submit", s.instrument("/v1/submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/arbiter/stats", s.instrument("/v1/arbiter/stats", s.handleArbiterStats))
	mux.HandleFunc("POST /v1/cloud/submit", s.instrument("/v1/cloud/submit", s.handleCloudSubmit))
	mux.HandleFunc("POST /v1/cloud/preempt", s.instrument("/v1/cloud/preempt", s.handleCloudPreempt))
	mux.HandleFunc("GET /v1/cloud/stats", s.instrument("/v1/cloud/stats", s.handleCloudStats))
	mux.HandleFunc("GET /v1/history", s.instrument("/v1/history", s.handleHistory))
	mux.HandleFunc("GET /v1/model", s.instrument("/v1/model", s.handleModel))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// Metrics returns the server's metric set (primarily for tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache returns the installed resource-plan cache, or nil when the caller
// supplied a non-cache planner.
func (s *Server) Cache() *resource.Cache { return s.cache }

// Recalibrator returns the server's feedback recalibrator.
func (s *Server) Recalibrator() *feedback.Recalibrator { return s.rec }

// Close releases resources the server owns outside Serve — the feedback
// journal and the history store (committing any staged points). Serve
// closes them on return; call Close directly when using the server via
// Handler only.
func (s *Server) Close() error {
	var err error
	if s.journal != nil {
		err = s.journal.Close()
	}
	if s.hist != nil {
		if cerr := s.hist.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// History returns the server's history store, or nil when Config.
// HistoryDir was unset (primarily for tests).
func (s *Server) History() *history.Store { return s.hist }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve listens on addr and serves until ctx is cancelled (SIGTERM in
// cmd/raqo), then drains gracefully: the listener closes, in-flight
// requests get up to DrainTimeout to finish, and Serve returns nil on a
// clean drain. ready, when non-nil, is called with the bound address once
// the listener is up — the hook ephemeral-port callers (smoke tests)
// need.
func (s *Server) Serve(ctx context.Context, addr string, ready func(addr string)) error {
	return s.ServeHandler(ctx, addr, nil, ready)
}

// ServeHandler is Serve with the front handler swapped out: handler (nil
// selects the server's own mux) receives every request while the server
// still owns the listener lifecycle and its background loops
// (recalibration, telemetry gather, graceful drain). This is how the
// fleet layer interposes its routing mux in front of a node's local
// handlers without duplicating the serve loop.
func (s *Server) ServeHandler(ctx context.Context, addr string, handler http.Handler, ready func(addr string)) error {
	if handler == nil {
		handler = s.mux
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	// Background recalibration: drift-gated, stopped (and waited for)
	// before Serve returns so shutdown never leaks the goroutine.
	loopCtx, stopLoop := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	if s.cfg.RecalInterval > 0 {
		go func() {
			defer close(loopDone)
			_ = s.rec.Loop(loopCtx, s.cfg.RecalInterval, nil)
		}()
	} else {
		close(loopDone)
	}
	// Telemetry gather: every HistoryInterval the metric registry is
	// sampled into the history store and committed as one durable block.
	gatherDone := make(chan struct{})
	if s.hist != nil && s.cfg.HistoryInterval > 0 {
		go func() {
			defer close(gatherDone)
			t := time.NewTicker(s.cfg.HistoryInterval)
			defer t.Stop()
			for {
				select {
				case <-loopCtx.Done():
					return
				case <-t.C:
					_ = s.gatherHistory(time.Now().Unix())
				}
			}
		}()
	} else {
		close(gatherDone)
	}
	defer func() {
		stopLoop()
		<-loopDone
		<-gatherDone
		_ = s.Close()
	}()

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("server: drain: %w", err)
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	}
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint request counter,
// latency histogram and response-code counter.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.With(endpoint).Inc()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		s.metrics.Latency.With(endpoint).Observe(time.Since(start).Seconds())
		s.metrics.Responses.With(statusLabel(rec.code)).Inc()
	}
}

// statusLabel maps a response code onto the closed set of labels the
// server can emit, keeping the responses_total series bounded even if a
// handler ever writes an unexpected code.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusUnprocessableEntity:
		return "422"
	case http.StatusTooManyRequests:
		return "429"
	case 499: // client cancelled (nginx convention)
		return "499"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusGatewayTimeout:
		return "504"
	}
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// writeError renders the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = WriteJSON(w, ErrorResponse{Error: err.Error()})
}

// writeResult renders a 200 JSON body.
func writeResult(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = WriteJSON(w, v)
}

// maxBodyBytes bounds request bodies; optimizer requests are tiny.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes a JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// resolveQuery turns a request's query name or relation list into a
// validated logical query.
func (s *Server) resolveQuery(name string, relations []string) (*plan.Query, string, error) {
	switch {
	case name != "" && len(relations) > 0:
		return nil, "", errors.New("specify query or relations, not both")
	case name != "":
		q, err := workload.TPCHQuery(s.sch, name)
		return q, name, err
	case len(relations) > 0:
		q, err := plan.NewQuery(s.sch, relations...)
		if err != nil {
			return nil, "", err
		}
		return q, strings.Join(q.Rels, ","), nil
	default:
		return nil, "", errors.New("missing query")
	}
}

// admitted runs fn while holding an admission slot, translating admission
// failures into HTTP codes: 429 + Retry-After on overload, 499 when the
// client went away while queued.
func (s *Server) admitted(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) {
	ctx := r.Context()
	if err := s.admit.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			s.metrics.Rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())+1))
			writeError(w, http.StatusTooManyRequests, err)
		default: // client cancelled while queued
			s.metrics.Cancelled.Inc()
			writeError(w, statusClientClosedRequest, err)
		}
		return
	}
	defer s.admit.release()
	s.metrics.InFlight.Inc()
	defer s.metrics.InFlight.Dec()
	reqCtx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	fn(reqCtx)
}

// writePlanningError maps a failed optimization to an HTTP code: 499 for
// client cancellation, 504 for a request-deadline timeout, 422 for
// planning failures (e.g. no plan within a price budget).
func (s *Server) writePlanningError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		s.metrics.Cancelled.Inc()
		writeError(w, statusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, name, err := s.resolveQuery(req.Query, req.Relations)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "joint"
	}
	switch mode {
	case "joint", "fixed", "budget", "price":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", mode))
		return
	}
	s.admitted(w, r, func(ctx context.Context) {
		var d *core.Decision
		var err error
		switch mode {
		case "joint":
			d, err = s.opt.OptimizeCtx(ctx, q)
		case "fixed":
			d, err = s.opt.OptimizeFixedCtx(ctx, q, plan.Resources{Containers: req.Containers, ContainerGB: req.ContainerGB})
		case "budget":
			d, err = s.opt.OptimizeForBudgetCtx(ctx, q, req.Containers, req.ContainerGB)
		case "price":
			d, err = s.opt.OptimizeForPriceCtx(ctx, q, req.BudgetDollars)
		}
		if err != nil {
			s.writePlanningError(w, r, err)
			return
		}
		s.metrics.ObserveDecision(d)
		writeResult(w, NewOptimizeResponse(name, mode, s.opt.Planner(), d))
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing queries"))
		return
	}
	queries := make([]*plan.Query, len(req.Queries))
	for i, name := range req.Queries {
		q, _, err := s.resolveQuery(name, nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		queries[i] = q
	}
	s.admitted(w, r, func(ctx context.Context) {
		decisions, err := s.opt.OptimizeBatchCtx(ctx, queries, req.Parallel)
		if err != nil {
			s.writePlanningError(w, r, err)
			return
		}
		resp := BatchResponse{Results: make([]OptimizeResponse, len(decisions))}
		for i, d := range decisions {
			s.metrics.ObserveDecision(d)
			resp.Results[i] = NewOptimizeResponse(req.Queries[i], "joint", s.opt.Planner(), d)
		}
		if s.cache != nil {
			cs := NewCacheStats(s.cache.Stats())
			resp.Cache = &cs
		}
		if m := s.opt.Memo(); m != nil {
			resp.Memo = &MemoStats{Hits: m.Hits(), Misses: m.Misses(), Entries: m.Size()}
		}
		writeResult(w, resp)
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, name, err := s.resolveQuery(r.PathValue("query"), nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.admitted(w, r, func(ctx context.Context) {
		d, err := s.opt.OptimizeCtx(ctx, q)
		if err != nil {
			s.writePlanningError(w, r, err)
			return
		}
		ops, err := s.opt.ExplainOperators(d)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.metrics.ObserveDecision(d)
		writeResult(w, ExplainResponse{
			OptimizeResponse: NewOptimizeResponse(name, "joint", s.opt.Planner(), d),
			Operators:        NewExplainOperators(ops),
			PlanTree:         d.Plan.String(),
		})
	})
}

// handleFeedback ingests execution feedback. The 200 acknowledges
// durability: every observation is journaled (via Feed) and the history
// block committed before writeResult runs.
//
//raqo:ack
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing observations"))
		return
	}
	// All-or-nothing: validate the whole batch before feeding any of it,
	// so a client bug can't leave half a batch in the journal.
	for i := range req.Observations {
		if err := req.Observations[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("observation %d: %w", i, err))
			return
		}
	}
	now := time.Now().Unix()
	for i := range req.Observations {
		o := req.Observations[i]
		if o.ObservedAt == 0 {
			// Untimestamped observations completed "about now" as far as
			// the history store is concerned.
			o.ObservedAt = now
		}
		if err := s.rec.Feed(o); err != nil {
			// Validation passed, so only journal I/O can fail here.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.metrics.FeedbackError.Observe(o.RelError())
	}
	// Journal-before-ack for the error series too: the batch's history
	// points are durable before the 200 goes out.
	if s.hist != nil {
		if err := s.hist.Commit(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeResult(w, FeedbackResponse{
		Accepted: len(req.Observations),
		Stored:   s.rec.Store().Len(),
		Total:    s.rec.Store().Total(),
		Drifted:  s.rec.Detector().Drifted(),
	})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	writeResult(w, NewModelResponse(s.rec))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeResult(w, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.Registry.WritePrometheus(w)
}
