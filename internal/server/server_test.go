package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"raqo/internal/catalog"
	"raqo/internal/cluster"
	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/plan"
	"raqo/internal/resource"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatalf("encode request: %v", err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBodyInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// wireOptimize mirrors OptimizeResponse with the plan kept raw, since
// plan.Node only decodes against a schema via plan.Decode.
type wireOptimize struct {
	Query              string          `json:"query"`
	Mode               string          `json:"mode"`
	Planner            string          `json:"planner"`
	TimeSeconds        float64         `json:"timeSeconds"`
	MoneyDollars       float64         `json:"moneyDollars"`
	PlansConsidered    int             `json:"plansConsidered"`
	ResourceIterations int64           `json:"resourceIterations"`
	Plan               json.RawMessage `json:"plan"`
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	decodeBodyInto(t, resp, &body)
	if body.Status != "ok" {
		t.Fatalf("healthz status field = %q, want ok", body.Status)
	}
}

func TestOptimizeAllModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  OptimizeRequest
	}{
		{"joint", OptimizeRequest{Query: "Q12"}},
		{"fixed", OptimizeRequest{Query: "Q12", Mode: "fixed", Containers: 8, ContainerGB: 8}},
		{"budget", OptimizeRequest{Query: "Q3", Mode: "budget", Containers: 10, ContainerGB: 4}},
		{"price", OptimizeRequest{Query: "Q12", Mode: "price", BudgetDollars: 1e9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/optimize", tc.req)
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, body %s", resp.StatusCode, b)
			}
			var out wireOptimize
			decodeBodyInto(t, resp, &out)
			if out.Query != "Q12" && out.Query != "Q3" {
				t.Errorf("query = %q", out.Query)
			}
			if out.TimeSeconds <= 0 {
				t.Errorf("timeSeconds = %g, want > 0", out.TimeSeconds)
			}
			if out.MoneyDollars <= 0 {
				t.Errorf("moneyDollars = %g, want > 0", out.MoneyDollars)
			}
			if len(out.Plan) == 0 || string(out.Plan) == "null" {
				t.Errorf("missing plan in response")
			}
			if out.Planner == "" {
				t.Errorf("missing planner name")
			}
		})
	}
}

func TestOptimizeByRelations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Relations: []string{"lineitem", "orders"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out wireOptimize
	decodeBodyInto(t, resp, &out)
	if out.Query != "lineitem,orders" {
		t.Fatalf("query = %q, want lineitem,orders", out.Query)
	}
}

// TestOptimizePlanRoundTrips decodes the served plan against the same
// schema and re-encodes it: the JSON must be byte-identical, proving the
// wire form is lossless (shape, algorithms, resource annotations).
func TestOptimizePlanRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Query: "Q3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out wireOptimize
	decodeBodyInto(t, resp, &out)
	node, err := plan.Decode(catalog.TPCH(100), out.Plan)
	if err != nil {
		t.Fatalf("plan.Decode: %v", err)
	}
	reencoded, err := json.Marshal(node)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, out.Plan); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if compact.String() != string(reencoded) {
		t.Fatalf("plan JSON did not round-trip:\n got %s\nwant %s", reencoded, compact.String())
	}
	if node.Res.IsZero() {
		t.Fatalf("decoded root join lost its resource annotation")
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid json", `{"query": `, http.StatusBadRequest},
		{"unknown field", `{"query":"Q12","frobnicate":1}`, http.StatusBadRequest},
		{"missing query", `{}`, http.StatusBadRequest},
		{"query and relations", `{"query":"Q12","relations":["orders"]}`, http.StatusBadRequest},
		{"unknown mode", `{"query":"Q12","mode":"psychic"}`, http.StatusBadRequest},
		{"unknown query name", `{"query":"Q99"}`, http.StatusBadRequest},
		{"disconnected relations", `{"relations":["part","customer"]}`, http.StatusBadRequest},
		{"zero price budget", `{"query":"Q12","mode":"price"}`, http.StatusUnprocessableEntity},
		{"fixed outside conditions", `{"query":"Q12","mode":"fixed","containers":5000,"containerGB":8}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.body)
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, b)
			}
			var e ErrorResponse
			decodeBodyInto(t, resp, &e)
			if e.Error == "" {
				t.Fatalf("error body missing error field")
			}
		})
	}

	t.Run("batch missing queries", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("explain unknown query", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/explain/Q99")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/explain/Q12")
	if err != nil {
		t.Fatalf("GET /v1/explain/Q12: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		wireOptimize
		Operators []ExplainOperator `json:"operators"`
		PlanTree  string            `json:"planTree"`
	}
	decodeBodyInto(t, resp, &out)
	if len(out.Operators) == 0 {
		t.Fatalf("no operators in explanation")
	}
	for _, op := range out.Operators {
		if op.Algo != "SMJ" && op.Algo != "BHJ" {
			t.Errorf("operator algo = %q", op.Algo)
		}
		if op.Containers <= 0 || op.ContainerGB <= 0 {
			t.Errorf("operator missing resources: %+v", op)
		}
		if op.ModeledSeconds <= 0 {
			t.Errorf("operator missing modeled time: %+v", op)
		}
	}
	if out.PlanTree == "" {
		t.Fatalf("missing plan tree")
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Queries: []string{"Q12", "Q3", "Q12"}, Parallel: 2})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var out struct {
		Results []wireOptimize `json:"results"`
		Cache   *CacheStats    `json:"cache"`
		Memo    *MemoStats     `json:"memo"`
	}
	decodeBodyInto(t, resp, &out)
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	for i, want := range []string{"Q12", "Q3", "Q12"} {
		if out.Results[i].Query != want {
			t.Errorf("results[%d].query = %q, want %q", i, out.Results[i].Query, want)
		}
	}
	if out.Results[0].TimeSeconds != out.Results[2].TimeSeconds {
		t.Errorf("same query planned to different costs: %g vs %g",
			out.Results[0].TimeSeconds, out.Results[2].TimeSeconds)
	}
	if out.Cache == nil {
		t.Fatalf("missing cache stats")
	}
	if out.Memo == nil {
		t.Fatalf("missing memo stats")
	}
	if out.Memo.Hits == 0 {
		t.Errorf("repeated query produced no memo hits: %+v", out.Memo)
	}
}

// gatedPlanner blocks every resource-planning call until release is
// closed, signalling the first arrival on started. It lets overload tests
// hold the admission slot deterministically.
type gatedPlanner struct {
	inner   resource.HillClimb
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedPlanner) Plan(m cost.Model, ssGB float64, cond cluster.Conditions) (plan.Resources, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.inner.Plan(m, ssGB, cond)
}

func (g *gatedPlanner) Evaluations() int64 { return g.inner.Evaluations() }

// TestOverloadSheds saturates a 1-slot, 1-queue server and checks the
// admission behavior end to end: the queued request waits, excess
// requests get immediate 429 + Retry-After, and once the slot frees both
// admitted requests complete. The server never deadlocks.
func TestOverloadSheds(t *testing.T) {
	gate := &gatedPlanner{started: make(chan struct{}), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{
		Options:      core.Options{Resource: gate},
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 10 * time.Second,
	})

	type result struct {
		code int
		err  error
	}
	do := func(ch chan<- result) {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
			strings.NewReader(`{"query":"Q12"}`))
		if err != nil {
			ch <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ch <- result{code: resp.StatusCode}
	}

	first := make(chan result, 1)
	go do(first)
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the planner")
	}

	second := make(chan result, 1)
	go do(second)
	waitQueued(t, ts.URL, 1)

	// Queue is now full: further requests must shed immediately.
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
			strings.NewReader(`{"query":"Q12"}`))
		if err != nil {
			t.Fatalf("overflow request %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d: status = %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("429 response missing Retry-After")
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	close(gate.release)
	for name, ch := range map[string]chan result{"first": first, "second": second} {
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("%s request failed: %v", name, r.err)
			}
			if r.code != http.StatusOK {
				t.Fatalf("%s request status = %d, want 200", name, r.code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s request never completed: server deadlocked", name)
		}
	}
}

// waitQueued polls /metrics until raqo_http_queued reaches want.
func waitQueued(t *testing.T, baseURL string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := scrapeMetric(t, baseURL, "raqo_http_queued"); ok && v >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("queue depth never reached %g", want)
}

// scrapeMetric fetches /metrics and returns the first sample of the named
// family (label-less families only).
func scrapeMetric(t *testing.T, baseURL, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
			t.Fatalf("parse metric line %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestClientCancellationStopsPlanning issues a request whose context is
// already cancelled: the planner search must observe it (verified by the
// wrapped context error) and the server must answer 499 and count the
// cancellation.
func TestClientCancellationStopsPlanning(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize",
		strings.NewReader(`{"query":"All"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, statusClientClosedRequest, rec.Body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if !strings.Contains(e.Error, "cancelled") && !strings.Contains(e.Error, "canceled") {
		t.Fatalf("error = %q, want a cancellation error", e.Error)
	}
	if got := s.Metrics().Cancelled.Value(); got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// TestConcurrentOptimizeSharedCache is the race-detector target: 16
// goroutines hammer /v1/optimize against the shared resource-plan cache
// (memo disabled so every costing consults it) and afterwards /metrics
// must report non-zero cache hits — the warm-cache acceptance criterion.
func TestConcurrentOptimizeSharedCache(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DisableCostMemo: true,
		MaxInFlight:     16,
		MaxQueue:        64,
		QueueTimeout:    time.Minute,
	})
	queries := []string{"Q12", "Q3", "Q2"}
	const goroutines = 16
	const perGoroutine = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				q := queries[(g+i)%len(queries)]
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
					strings.NewReader(`{"query":"`+q+`"}`))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", q, resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Cache() == nil {
		t.Fatal("server did not install the shared cache")
	}
	hits, ok := scrapeMetric(t, ts.URL, "raqo_resource_cache_hits_total")
	if !ok {
		t.Fatal("raqo_resource_cache_hits_total missing from /metrics")
	}
	if hits == 0 {
		t.Fatalf("no resource-cache hits after repeated-query workload; stats: %+v", s.Cache().Stats())
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Query: "Q12"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		`raqo_http_requests_total{endpoint="/v1/optimize"} 1`,
		`# TYPE raqo_http_request_seconds histogram`,
		`raqo_plans_considered_total`,
		`raqo_resource_cache_hits_total`,
		`raqo_cost_memo_entries`,
		`raqo_uptime_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeGracefulDrain starts the real listener on an ephemeral port,
// confirms it serves, then cancels the context and checks Serve returns
// cleanly after draining.
func TestServeGracefulDrain(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(ctx, "127.0.0.1:0", func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(10 * time.Second):
		t.Fatal("listener never came up")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz over real listener: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve never returned after cancellation")
	}
}

// TestStatusLabelBounded pins the raqolint metric fix: response codes map
// onto a closed label set, so responses_total cardinality stays bounded
// no matter what a handler writes.
func TestStatusLabelBounded(t *testing.T) {
	cases := map[int]string{
		200: "200", 400: "400", 404: "404", 405: "405", 422: "422",
		429: "429", 499: "499", 500: "500", 504: "504",
		201: "2xx", 302: "3xx", 418: "4xx", 503: "5xx",
	}
	for code, want := range cases {
		if got := statusLabel(code); got != want {
			t.Errorf("statusLabel(%d) = %q, want %q", code, got, want)
		}
	}
}
