package stats

import (
	"math"
	"sort"
)

// Percentile returns the nearest-rank p-th percentile (0 < p <= 100) of
// the values. The input is not modified; an empty input yields 0. The
// nearest-rank definition matches the drift detector's windowed quantiles
// and is exact (no interpolation), which keeps report output byte-stable.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
