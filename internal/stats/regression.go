// Package stats implements the small amount of numerical machinery the
// paper's cost model needs: ordinary least squares (optionally ridge
// regularized) solved via the normal equations, the paper's feature map for
// join cost models, and fit-quality metrics.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal-equation system is singular (e.g.
// perfectly collinear features and no ridge penalty).
var ErrSingular = errors.New("stats: singular system; add samples or a ridge penalty")

// Features maps the paper's raw resource-planning inputs to the Section VI-A
// feature vector [ss, ss², cs, cs², nc, nc², cs·nc] where ss is the smaller
// input size (GB), cs the container size (GB) and nc the number of
// containers. The squared and interaction terms "capture non-linear behavior
// and the interaction between cs and nc".
func Features(ss, cs, nc float64) []float64 {
	return []float64{ss, ss * ss, cs, cs * cs, nc, nc * nc, cs * nc}
}

// NumFeatures is the length of the vector returned by Features.
const NumFeatures = 7

// LinearModel is a fitted linear model y ≈ Intercept + Coef·x.
type LinearModel struct {
	Coef      []float64
	Intercept float64
}

// Predict evaluates the model on a feature vector. It panics if the length
// does not match the fitted coefficients, which indicates a programming
// error rather than bad data.
func (m *LinearModel) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic(fmt.Sprintf("stats: predict with %d features, model has %d", len(x), len(m.Coef)))
	}
	y := m.Intercept
	for i, xi := range x {
		y += m.Coef[i] * xi
	}
	return y
}

// FitOptions controls the regression.
type FitOptions struct {
	// Ridge is the L2 penalty λ added to the diagonal of XᵀX (the intercept
	// is never penalized). Zero means plain OLS.
	Ridge float64
	// NoIntercept fits y ≈ Coef·x with no constant term.
	NoIntercept bool
}

// Fit solves least squares for y ≈ b0 + b·x over the given samples.
// xs[i] must all have the same length.
func Fit(xs [][]float64, ys []float64, opt FitOptions) (*LinearModel, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: no samples")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: %d feature rows vs %d targets", len(xs), len(ys))
	}
	p := len(xs[0])
	if p == 0 {
		return nil, errors.New("stats: empty feature vector")
	}
	for i, x := range xs {
		if len(x) != p {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(x), p)
		}
	}
	if opt.Ridge < 0 {
		return nil, fmt.Errorf("stats: negative ridge penalty %v", opt.Ridge)
	}
	cols := p
	if !opt.NoIntercept {
		cols++
	}
	// Build the normal equations A = XᵀX (+ λI), b = Xᵀy. Column 0 is the
	// intercept when present.
	a := make([][]float64, cols)
	for i := range a {
		a[i] = make([]float64, cols)
	}
	b := make([]float64, cols)
	row := make([]float64, cols)
	for s, x := range xs {
		if opt.NoIntercept {
			copy(row, x)
		} else {
			row[0] = 1
			copy(row[1:], x)
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * ys[s]
		}
	}
	if opt.Ridge > 0 {
		start := 0
		if !opt.NoIntercept {
			start = 1 // do not penalize the intercept
		}
		for i := start; i < cols; i++ {
			a[i][i] += opt.Ridge
		}
	}
	sol, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	m := &LinearModel{}
	if opt.NoIntercept {
		m.Coef = sol
	} else {
		m.Intercept = sol[0]
		m.Coef = sol[1:]
	}
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a·x = b,
// destroying its inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot: largest |a[row][col]| for row >= col.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// R2 returns the coefficient of determination of the model on the samples
// (1 is a perfect fit; can be negative for a model worse than the mean).
func R2(m *LinearModel, xs [][]float64, ys []float64) float64 {
	if len(ys) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, x := range xs {
		d := ys[i] - m.Predict(x)
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root mean squared error of the model on the samples.
func RMSE(m *LinearModel, xs [][]float64, ys []float64) float64 {
	if len(ys) == 0 {
		return math.NaN()
	}
	var sum float64
	for i, x := range xs {
		d := ys[i] - m.Predict(x)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ys)))
}
