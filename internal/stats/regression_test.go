package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitRecoversPlantedLine(t *testing.T) {
	// y = 3 + 2x0 - 5x1, exact (no noise).
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {2, 3}, {5, -1}, {-2, 4}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x[0] - 5*x[1]
	}
	m, err := Fit(xs, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Intercept, 3, 1e-9) || !almost(m.Coef[0], 2, 1e-9) || !almost(m.Coef[1], -5, 1e-9) {
		t.Errorf("got intercept=%v coef=%v", m.Intercept, m.Coef)
	}
	if r2 := R2(m, xs, ys); !almost(r2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", r2)
	}
	if rmse := RMSE(m, xs, ys); rmse > 1e-9 {
		t.Errorf("RMSE = %v, want ~0", rmse)
	}
}

func TestFitNoIntercept(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	m, err := Fit(xs, ys, FitOptions{NoIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Intercept != 0 {
		t.Errorf("intercept = %v, want 0", m.Intercept)
	}
	if !almost(m.Coef[0], 2, 1e-9) {
		t.Errorf("coef = %v, want 2", m.Coef[0])
	}
}

func TestFitRecoversNoisyCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := []float64{1.5, -0.7, 4.0}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := 10.0
		for j, c := range truth {
			y += c * x[j]
		}
		y += rng.NormFloat64() * 0.01
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Fit(xs, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Intercept, 10, 0.01) {
		t.Errorf("intercept = %v, want ≈10", m.Intercept)
	}
	for j, c := range truth {
		if !almost(m.Coef[j], c, 0.01) {
			t.Errorf("coef[%d] = %v, want ≈%v", j, m.Coef[j], c)
		}
	}
	if r2 := R2(m, xs, ys); r2 < 0.999 {
		t.Errorf("R2 = %v, want > 0.999", r2)
	}
}

func TestFitSingular(t *testing.T) {
	// Perfectly collinear columns.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	ys := []float64{1, 2, 3}
	if _, err := Fit(xs, ys, FitOptions{}); err == nil {
		t.Error("singular system accepted without ridge")
	}
	// Ridge fixes it.
	if _, err := Fit(xs, ys, FitOptions{Ridge: 1e-6}); err != nil {
		t.Errorf("ridge fit failed: %v", err)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, FitOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, FitOptions{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, FitOptions{}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, FitOptions{}); err == nil {
		t.Error("empty feature vector accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, FitOptions{Ridge: -1}); err == nil {
		t.Error("negative ridge accepted")
	}
}

func TestFeaturesShape(t *testing.T) {
	f := Features(2, 3, 4)
	want := []float64{2, 4, 3, 9, 4, 16, 12}
	if len(f) != NumFeatures {
		t.Fatalf("len = %d, want %d", len(f), NumFeatures)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("Features[%d] = %v, want %v", i, f[i], want[i])
		}
	}
}

// Property: fitting a function that is exactly linear in the paper feature
// space recovers it to numerical precision, for arbitrary planted
// coefficients.
func TestFitFeatureSpaceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := make([]float64, NumFeatures)
		for i := range truth {
			truth[i] = rng.NormFloat64() * 10
		}
		intercept := rng.NormFloat64() * 100
		var xs [][]float64
		var ys []float64
		for i := 0; i < 200; i++ {
			ss := rng.Float64() * 12
			cs := 1 + rng.Float64()*9
			nc := 1 + float64(rng.Intn(100))
			x := Features(ss, cs, nc)
			y := intercept
			for j := range truth {
				y += truth[j] * x[j]
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		m, err := Fit(xs, ys, FitOptions{})
		if err != nil {
			return false
		}
		if !almost(m.Intercept, intercept, 1e-4*(1+math.Abs(intercept))) {
			return false
		}
		for j := range truth {
			if !almost(m.Coef[j], truth[j], 1e-4*(1+math.Abs(truth[j]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPredictPanicsOnBadLength(t *testing.T) {
	m := &LinearModel{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestR2EdgeCases(t *testing.T) {
	m := &LinearModel{Coef: []float64{0}, Intercept: 5}
	// Constant target perfectly predicted.
	xs := [][]float64{{1}, {2}}
	ys := []float64{5, 5}
	if r2 := R2(m, xs, ys); r2 != 1 {
		t.Errorf("constant perfect fit R2 = %v, want 1", r2)
	}
	// Constant target mispredicted.
	m.Intercept = 4
	if r2 := R2(m, xs, ys); !math.IsInf(r2, -1) {
		t.Errorf("constant bad fit R2 = %v, want -Inf", r2)
	}
	if !math.IsNaN(R2(m, nil, nil)) {
		t.Error("empty R2 should be NaN")
	}
	if !math.IsNaN(RMSE(m, nil, nil)) {
		t.Error("empty RMSE should be NaN")
	}
}
