// Package telemetry is a small dependency-free metrics layer for the RAQO
// service: atomic counters, gauges and fixed-bucket latency histograms
// collected in a Registry and rendered in the Prometheus text exposition
// format (served at /metrics by internal/server) or as a one-line summary
// (printed by `raqo batch`).
//
// The package deliberately implements only what the optimizer service
// needs — no labels beyond a single optional key, no summaries/quantiles,
// no push — so it stays stdlib-only and allocation-free on the hot
// recording paths. All metric operations are safe for concurrent use.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: bucket i counts observations <= bounds[i], plus an implicit
// +Inf bucket, a running sum and a total count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are latency buckets (seconds) suited to optimizer calls that
// run from tens of microseconds to a few seconds.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one (label value → metric) instance within a family.
type series struct {
	label string // label value; "" for unlabeled families
	c     *Counter
	g     *Gauge
	h     *Histogram
	fn    func() float64
}

// family is one named metric family with HELP/TYPE metadata.
type family struct {
	name     string
	help     string
	kind     metricKind
	labelKey string // label key for vec families; "" otherwise
	buckets  []float64

	mu     sync.Mutex
	series []*series          // guarded by mu
	byVal  map[string]*series // guarded by mu
}

func (f *family) get(label string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byVal[label]; ok {
		return s
	}
	s := &series{label: label}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	if f.byVal == nil {
		f.byVal = make(map[string]*series)
	}
	f.byVal[label] = s
	f.series = append(f.series, s)
	return s
}

// snapshot returns the family's series sorted by label value for
// deterministic rendering.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	out := append([]*series(nil), f.series...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// Registry holds metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family          // guarded by mu
	byName   map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

func (r *Registry) family(name, help string, kind metricKind, labelKey string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey, buckets: buckets}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "", nil).get("").c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "", nil).get("").g
}

// Histogram registers (or returns) an unlabeled histogram; nil buckets
// select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.family(name, help, kindHistogram, "", buckets).get("").h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter { return v.f.get(value).c }

// CounterVec registers a counter family with a single label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labelKey, nil)}
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram { return v.f.get(value).h }

// HistogramVec registers a histogram family with a single label key; nil
// buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labelKey, buckets)}
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the bridge for components that keep their own atomic counters
// (e.g. the resource-plan cache).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounter, "", nil)
	s := f.get("")
	s.fn = fn
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, "", nil)
	s := f.get("")
	s.fn = fn
}

// fmtFloat renders a value the way Prometheus clients do: integers without
// an exponent, everything else in shortest-form scientific/decimal.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return float64(s.g.Value())
	}
	return 0
}

func labelSuffix(key, value string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", key, value)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.snapshot() {
			if f.kind == kindHistogram {
				if err := writeHistogram(w, f, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSuffix(f.labelKey, s.label), fmtFloat(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, s *series) error {
	h := s.h
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, f, s.label, fmtFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, f, s.label, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelSuffix(f.labelKey, s.label), fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSuffix(f.labelKey, s.label), h.Count())
	return err
}

func writeBucket(w io.Writer, f *family, label, le string, cum int64) error {
	if f.labelKey == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, le, cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", f.name, f.labelKey, label, le, cum)
	return err
}

// Visit calls fn once per series with its current scalar value —
// counters, gauges and func-backed metrics as-is, histograms as two
// series suffixed _count and _sum. Labeled series are named
// "<family>.<label>". Families are visited in registration order and
// series within a family by label, so the sequence of names is
// deterministic — the contract the periodic gather loop into the
// history store relies on.
func (r *Registry) Visit(fn func(name string, value float64)) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		for _, s := range f.snapshot() {
			name := f.name
			if f.labelKey != "" {
				name = f.name + "." + s.label
			}
			if f.kind == kindHistogram {
				fn(name+"_count", float64(s.h.Count()))
				fn(name+"_sum", s.h.Sum())
				continue
			}
			fn(name, s.value())
		}
	}
}

// Summary renders counters, gauges and func metrics as one
// space-separated "name=value" line (histograms appear as name_count),
// in registration order — the `raqo batch` stats line.
func (r *Registry) Summary() string {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		for _, s := range f.snapshot() {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			suffix := ""
			if f.labelKey != "" {
				suffix = fmt.Sprintf("{%s}", s.label)
			}
			if f.kind == kindHistogram {
				fmt.Fprintf(&b, "%s_count%s=%d", f.name, suffix, s.h.Count())
				continue
			}
			fmt.Fprintf(&b, "%s%s=%s", f.name, suffix, fmtFloat(s.value()))
		}
	}
	return b.String()
}
