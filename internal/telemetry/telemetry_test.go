package telemetry

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("raqo_test_total", "test counter")
	g := r.Gauge("raqo_test_in_flight", "test gauge")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotone
	g.Set(7)
	g.Dec()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP raqo_test_total test counter",
		"# TYPE raqo_test_total counter",
		"raqo_test_total 4",
		"# TYPE raqo_test_in_flight gauge",
		"raqo_test_in_flight 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecRendersSortedSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("raqo_http_requests_total", "requests", "endpoint")
	v.With("/v1/optimize").Add(2)
	v.With("/healthz").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	i := strings.Index(out, `raqo_http_requests_total{endpoint="/healthz"} 1`)
	j := strings.Index(out, `raqo_http_requests_total{endpoint="/v1/optimize"} 2`)
	if i < 0 || j < 0 || i > j {
		t.Fatalf("expected both series sorted by label, got:\n%s", out)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("raqo_latency_seconds", "latency", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 6.05 {
		t.Fatalf("sum = %g, want 6.05", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`raqo_latency_seconds_bucket{le="0.1"} 1`,
		`raqo_latency_seconds_bucket{le="1"} 3`,
		`raqo_latency_seconds_bucket{le="+Inf"} 4`,
		`raqo_latency_seconds_sum 6.05`,
		`raqo_latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToItsBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("raqo_b_seconds", "b", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is cumulative <= 1
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `raqo_b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its bucket:\n%s", b.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("raqo_cache_hits_total", "hits", func() float64 { return float64(n) })
	r.GaugeFunc("raqo_cache_entries", "entries", func() float64 { return 3 })
	n++
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "raqo_cache_hits_total 42") {
		t.Errorf("func counter not read at render time:\n%s", out)
	}
	if !strings.Contains(out, "raqo_cache_entries 3") {
		t.Errorf("func gauge missing:\n%s", out)
	}
}

func TestReRegisterReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("raqo_same_total", "x")
	b := r.Counter("raqo_same_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter not shared")
	}
}

func TestSummaryLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("plans_total", "p").Add(10)
	r.Gauge("in_flight", "g").Set(2)
	h := r.Histogram("lat_seconds", "l", nil)
	h.Observe(0.2)
	got := r.Summary()
	want := "plans_total=10 in_flight=2 lat_seconds_count=1"
	if got != want {
		t.Fatalf("Summary() = %q, want %q", got, want)
	}
}

// TestHistogramExactExposition pins the full text a histogram renders —
// boundary placement, +Inf, sum and count — byte for byte. Values are
// binary-exact so the sum has one canonical rendering.
func TestHistogramExactExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("raqo_e_seconds", "exact", []float64{0.25, 0.5, 2.5})
	h.Observe(0.25) // exactly on the first bound: counts as <= 0.25
	h.Observe(0.5)
	h.Observe(4) // beyond every bound: +Inf only
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP raqo_e_seconds exact
# TYPE raqo_e_seconds histogram
raqo_e_seconds_bucket{le="0.25"} 1
raqo_e_seconds_bucket{le="0.5"} 2
raqo_e_seconds_bucket{le="2.5"} 2
raqo_e_seconds_bucket{le="+Inf"} 3
raqo_e_seconds_sum 4.75
raqo_e_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestZeroObservationHistogramRendersEmpty checks that a registered but
// never-observed histogram still renders every bucket (at zero) — the
// shape scrapers rely on to learn the bucket layout before traffic.
func TestZeroObservationHistogramRendersEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("raqo_idle_seconds", "idle", nil) // DefBuckets
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "raqo_idle_seconds_bucket{"); got != len(DefBuckets)+1 {
		t.Fatalf("%d bucket lines, want %d:\n%s", got, len(DefBuckets)+1, out)
	}
	for _, bound := range DefBuckets {
		line := fmt.Sprintf("raqo_idle_seconds_bucket{le=%q} 0\n", fmtFloat(bound))
		if !strings.Contains(out, line) {
			t.Errorf("missing zero bucket %q in:\n%s", line, out)
		}
	}
	for _, want := range []string{
		`raqo_idle_seconds_bucket{le="+Inf"} 0`,
		"raqo_idle_seconds_sum 0",
		"raqo_idle_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramVecExposition checks labeled histograms render the label
// before le on every bucket line, including zero-observation series.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("raqo_l_seconds", "labeled", "endpoint", []float64{1})
	v.With("/a").Observe(0.5)
	v.With("/b") // registered, never observed
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`raqo_l_seconds_bucket{endpoint="/a",le="1"} 1`,
		`raqo_l_seconds_bucket{endpoint="/a",le="+Inf"} 1`,
		`raqo_l_seconds_sum{endpoint="/a"} 0.5`,
		`raqo_l_seconds_count{endpoint="/a"} 1`,
		`raqo_l_seconds_bucket{endpoint="/b",le="1"} 0`,
		`raqo_l_seconds_bucket{endpoint="/b",le="+Inf"} 0`,
		`raqo_l_seconds_sum{endpoint="/b"} 0`,
		`raqo_l_seconds_count{endpoint="/b"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestVisitEnumeratesSeries checks the gather contract: every series with
// its scalar value, histograms split into _count/_sum, labels dotted onto
// the family name, in a deterministic order.
func TestVisitEnumeratesSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(2)
	r.Gauge("g", "g").Set(-3)
	v := r.CounterVec("v_total", "v", "k")
	v.With("b").Inc()
	v.With("a").Add(4)
	h := r.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("f", "f", func() float64 { return 7.5 })

	got := make(map[string]float64)
	var order []string
	r.Visit(func(name string, val float64) {
		got[name] = val
		order = append(order, name)
	})
	want := map[string]float64{
		"c_total": 2, "g": -3,
		"v_total.a": 4, "v_total.b": 1,
		"h_seconds_count": 2, "h_seconds_sum": 2.5,
		"f": 7.5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Visit values = %v, want %v", got, want)
	}
	wantOrder := []string{"c_total", "g", "v_total.a", "v_total.b", "h_seconds_count", "h_seconds_sum", "f"}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("Visit order = %v, want %v", order, wantOrder)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", []float64{0.5})
	v := r.CounterVec("v_total", "v", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%2) * 0.7)
				v.With("a").Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if v.With("a").Value() != 8000 {
		t.Fatalf("vec counter = %d, want 8000", v.With("a").Value())
	}
}
