// Package units provides the size, time and money quantities shared by the
// RAQO planner, the cluster simulator and the execution simulator.
//
// Internally the models work in float64 gigabytes and float64 seconds; this
// package provides typed wrappers and formatting for API boundaries so that
// a container size is not accidentally mixed up with a data size in bytes.
package units

import (
	"fmt"
	"math"
)

// Bytes is a data size in bytes.
type Bytes int64

// Common data sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// GBf returns the size in (fractional) gigabytes.
func (b Bytes) GBf() float64 { return float64(b) / float64(GB) }

// MBf returns the size in (fractional) megabytes.
func (b Bytes) MBf() float64 { return float64(b) / float64(MB) }

// FromGB converts fractional gigabytes to Bytes, rounding to the nearest byte.
func FromGB(gb float64) Bytes { return Bytes(math.Round(gb * float64(GB))) }

// FromMB converts fractional megabytes to Bytes, rounding to the nearest byte.
func FromMB(mb float64) Bytes { return Bytes(math.Round(mb * float64(MB))) }

// String renders the size with a binary-prefix unit, e.g. "5.10GB".
func (b Bytes) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case abs >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case abs >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case abs >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Seconds is a duration in seconds. The execution simulator reports virtual
// (simulated) time, so time.Duration would be misleading; a plain float64
// wrapper keeps the unit explicit.
type Seconds float64

// String renders the duration, e.g. "1234.5s".
func (s Seconds) String() string { return fmt.Sprintf("%.1fs", float64(s)) }

// GBSeconds is the resource-usage currency of serverless analytics:
// (memory reserved in GB) x (seconds held). The paper reports "TB * sec";
// TBSeconds converts.
type GBSeconds float64

// TBSeconds returns the usage in TB·s, the unit used in the paper's Figure 2.
func (g GBSeconds) TBSeconds() float64 { return float64(g) / 1024 }

// String renders the usage, e.g. "12.3 TB·s".
func (g GBSeconds) String() string { return fmt.Sprintf("%.3f TB·s", g.TBSeconds()) }

// Dollars is a monetary amount.
type Dollars float64

// String renders the amount, e.g. "$12.34".
func (d Dollars) String() string { return fmt.Sprintf("$%.4f", float64(d)) }

// USD is the canonical name for a monetary amount on exported APIs. It is
// an alias (not a distinct type) so the original Dollars call sites and
// the JSON wire shape — a plain number — are unchanged.
type USD = Dollars

// Microdollars returns the amount in integer microdollars, rounded down.
// Telemetry counters are int64-valued, so dollar spend is exported as a
// monotone microdollar counter rather than a float.
func (d Dollars) Microdollars() int64 { return int64(math.Floor(float64(d) * 1e6)) }

// USDPerHour is a capacity price: dollars charged per hour one container
// of an instance class is provisioned, whether or not it is allocated.
type USDPerHour float64

// Over returns the cost of holding one unit for the given virtual seconds.
func (r USDPerHour) Over(seconds float64) USD { return USD(float64(r) * seconds / 3600) }

// String renders the rate, e.g. "$0.0520/hr".
func (r USDPerHour) String() string { return fmt.Sprintf("$%.4f/hr", float64(r)) }

// USDPerGBSecond is a usage price: dollars charged per GB·s of memory
// actually reserved — the serverless billing currency of the paper.
type USDPerGBSecond float64

// Over returns the cost of the given usage.
func (r USDPerGBSecond) Over(g GBSeconds) USD { return USD(float64(r) * float64(g)) }

// String renders the rate, e.g. "$0.000010/GB·s".
func (r USDPerGBSecond) String() string { return fmt.Sprintf("$%.6f/GB·s", float64(r)) }
