package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesConversions(t *testing.T) {
	tests := []struct {
		in   Bytes
		gb   float64
		mb   float64
		want string
	}{
		{0, 0, 0, "0B"},
		{512, 512.0 / (1 << 30), 512.0 / (1 << 20), "512B"},
		{KB, 1.0 / (1 << 20), 1.0 / (1 << 10), "1.00KB"},
		{10 * MB, 10.0 / 1024, 10, "10.00MB"},
		{GB, 1, 1024, "1.00GB"},
		{5*GB + 512*MB, 5.5, 5632, "5.50GB"},
		{2 * TB, 2048, 2 * 1024 * 1024, "2.00TB"},
	}
	for _, tt := range tests {
		if got := tt.in.GBf(); math.Abs(got-tt.gb) > 1e-12 {
			t.Errorf("(%d).GBf() = %v, want %v", tt.in, got, tt.gb)
		}
		if got := tt.in.MBf(); math.Abs(got-tt.mb) > 1e-9 {
			t.Errorf("(%d).MBf() = %v, want %v", tt.in, got, tt.mb)
		}
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFromGBRoundTrip(t *testing.T) {
	f := func(gb16 uint16) bool {
		gb := float64(gb16) / 128 // 0 .. 512 GB in 1/128 steps
		return math.Abs(FromGB(gb).GBf()-gb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMBRoundTrip(t *testing.T) {
	f := func(mb16 uint16) bool {
		mb := float64(mb16) / 4
		return math.Abs(FromMB(mb).MBf()-mb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeBytesString(t *testing.T) {
	if got := (-3 * GB).String(); got != "-3.00GB" {
		t.Errorf("negative size = %q, want -3.00GB", got)
	}
}

func TestGBSeconds(t *testing.T) {
	g := GBSeconds(2048)
	if got := g.TBSeconds(); got != 2 {
		t.Errorf("TBSeconds = %v, want 2", got)
	}
	if got := g.String(); got != "2.000 TB·s" {
		t.Errorf("String = %q", got)
	}
}

func TestSecondsAndDollarsString(t *testing.T) {
	if got := Seconds(12.34).String(); got != "12.3s" {
		t.Errorf("Seconds.String = %q", got)
	}
	if got := Dollars(1.5).String(); got != "$1.5000" {
		t.Errorf("Dollars.String = %q", got)
	}
}

func TestUSDAliasAndMicrodollars(t *testing.T) {
	var d Dollars = 2.5
	var u USD = d // alias: assignable without conversion
	if u.String() != "$2.5000" {
		t.Errorf("USD.String = %q", u.String())
	}
	tests := []struct {
		in   USD
		want int64
	}{
		{0, 0},
		{1, 1_000_000},
		{0.0000015, 1},
		{12.3456789, 12_345_678},
	}
	for _, tt := range tests {
		if got := tt.in.Microdollars(); got != tt.want {
			t.Errorf("(%v).Microdollars() = %d, want %d", float64(tt.in), got, tt.want)
		}
	}
}

func TestUSDPerHourOver(t *testing.T) {
	r := USDPerHour(3.6)
	if got := r.Over(1000); math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("Over(1000s) = %v, want $1", got)
	}
	if got := r.Over(0); got != 0 {
		t.Errorf("Over(0) = %v, want 0", got)
	}
	if got := r.String(); got != "$3.6000/hr" {
		t.Errorf("String = %q", got)
	}
}

func TestUSDPerGBSecondOver(t *testing.T) {
	r := USDPerGBSecond(1e-5)
	if got := r.Over(GBSeconds(2e5)); math.Abs(float64(got)-2.0) > 1e-12 {
		t.Errorf("Over(2e5 GB·s) = %v, want $2", got)
	}
	if got := r.String(); got != "$0.000010/GB·s" {
		t.Errorf("String = %q", got)
	}
}
