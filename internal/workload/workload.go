// Package workload provides the queries the paper evaluates on: the TPC-H
// join queries of Section VII (Q12, Q3, Q2 and the all-tables join), random
// k-way join queries over randomly generated schemas for the scaling
// experiments, and profile-run generation for training cost models.
package workload

import (
	"fmt"
	"math/rand"

	"raqo/internal/catalog"
	"raqo/internal/cost"
	"raqo/internal/execsim"
	"raqo/internal/plan"
)

// TPC-H query names used in Figures 12-14.
const (
	Q12 = "Q12" // single join: lineitem ⋈ orders
	Q3  = "Q3"  // two joins: customer ⋈ orders ⋈ lineitem
	Q2  = "Q2"  // three joins: part ⋈ partsupp ⋈ supplier ⋈ nation
	All = "All" // join all eight tables
)

// QueryNames lists the Section VII TPC-H queries in evaluation order.
var QueryNames = []string{Q12, Q3, Q2, All}

// TPCHQuery builds one of the paper's TPC-H queries by name.
func TPCHQuery(s *catalog.Schema, name string) (*plan.Query, error) {
	switch name {
	case Q12:
		return plan.NewQuery(s, catalog.Lineitem, catalog.Orders)
	case Q3:
		return plan.NewQuery(s, catalog.Customer, catalog.Orders, catalog.Lineitem)
	case Q2:
		return plan.NewQuery(s, catalog.Part, catalog.PartSupp, catalog.Supplier, catalog.Nation)
	case All:
		return plan.NewQuery(s, s.Tables()...)
	}
	return nil, fmt.Errorf("workload: unknown TPC-H query %q", name)
}

// TPCHQueries builds all Section VII queries keyed by name.
func TPCHQueries(s *catalog.Schema) (map[string]*plan.Query, error) {
	out := make(map[string]*plan.Query, len(QueryNames))
	for _, name := range QueryNames {
		q, err := TPCHQuery(s, name)
		if err != nil {
			return nil, err
		}
		out[name] = q
	}
	return out, nil
}

// RandomQuery draws a connected k-relation query from a schema by random
// greedy expansion along join edges, matching the paper's "queries having
// increasing number of joins, up to as many as the number of tables".
func RandomQuery(rng *rand.Rand, s *catalog.Schema, k int) (*plan.Query, error) {
	tables := s.Tables()
	if k < 1 || k > len(tables) {
		return nil, fmt.Errorf("workload: k=%d out of [1,%d]", k, len(tables))
	}
	start := tables[rng.Intn(len(tables))]
	chosen := []string{start}
	in := map[string]bool{start: true}
	for len(chosen) < k {
		var frontier []string
		for _, t := range chosen {
			for _, n := range s.Neighbors(t) {
				if !in[n] {
					frontier = append(frontier, n)
				}
			}
		}
		if len(frontier) == 0 {
			return nil, fmt.Errorf("workload: cannot grow a connected %d-relation query from %s", k, start)
		}
		pick := frontier[rng.Intn(len(frontier))]
		in[pick] = true
		chosen = append(chosen, pick)
	}
	return plan.NewQuery(s, chosen...)
}

// ProfileRuns generates cost-model training data by running single joins on
// the execution simulator over a grid of data sizes and resource
// configurations — the "profile runs" of Section VI-A. OOM configurations
// are skipped, as they would be in real profiling.
func ProfileRuns(p execsim.Params, largerGB float64, smallerGB []float64, containers []int, containerGB []float64) []cost.Profile {
	var out []cost.Profile
	for _, ss := range smallerGB {
		for _, nc := range containers {
			for _, cs := range containerGB {
				r := plan.Resources{Containers: nc, ContainerGB: cs}
				for _, algo := range plan.Algos {
					secs, err := p.JoinTime(algo, ss, largerGB, r)
					if err != nil {
						continue
					}
					out = append(out, cost.Profile{
						Algo: algo, SS: ss, CS: cs, NC: float64(nc), Seconds: secs,
					})
				}
			}
		}
	}
	return out
}

// DefaultProfileGrid returns the grid used to train the simulator-backed
// cost models: smaller sides up to 8 GB against a 77 GB fact side, across
// the default cluster's resource range.
func DefaultProfileGrid(p execsim.Params) []cost.Profile {
	smaller := []float64{0.1, 0.25, 0.5, 0.85, 1.5, 2.5, 3.4, 4.25, 5.1, 6.4, 8}
	// Profiling below 10 containers is avoided: the 1/parallelism times
	// there are so large they dominate the squared loss and wreck the fit
	// in the operating range (the quadratic feature space cannot express a
	// hyperbola).
	containers := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	sizes := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	return ProfileRuns(p, 77, smaller, containers, sizes)
}

// TrainedModels profiles the engine and fits the Section VI-A regression
// models on the simulator's measurements — the full pipeline the paper
// describes: profile runs → regression → cost-based RAQO.
func TrainedModels(p execsim.Params) (*cost.Models, error) {
	return cost.Train(DefaultProfileGrid(p))
}
