package workload

import (
	"math/rand"
	"testing"

	"raqo/internal/catalog"
	"raqo/internal/execsim"
	"raqo/internal/plan"
)

func TestTPCHQueries(t *testing.T) {
	s := catalog.TPCH(100)
	qs, err := TPCHQueries(s)
	if err != nil {
		t.Fatal(err)
	}
	wantJoins := map[string]int{Q12: 1, Q3: 2, Q2: 3, All: 7}
	for name, want := range wantJoins {
		q, ok := qs[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if got := q.NumJoins(); got != want {
			t.Errorf("%s joins = %d, want %d", name, got, want)
		}
	}
	if _, err := TPCHQuery(s, "Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestRandomQueryConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, err := catalog.Random(rng, 40, catalog.DefaultRandomConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 17, 40} {
		q, err := RandomQuery(rng, s, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(q.Rels) != k {
			t.Errorf("k=%d: got %d relations", k, len(q.Rels))
		}
	}
	if _, err := RandomQuery(rng, s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RandomQuery(rng, s, 41); err == nil {
		t.Error("k > tables accepted")
	}
}

func TestProfileRunsSkipOOM(t *testing.T) {
	h := execsim.Hive()
	profs := ProfileRuns(h, 77, []float64{5.1}, []int{10}, []float64{3, 10})
	// At 3 GB containers the 5.1 GB BHJ OOMs, so we get: SMJ@3, SMJ@10,
	// BHJ@10 = 3 profiles.
	if len(profs) != 3 {
		t.Fatalf("profiles = %d, want 3", len(profs))
	}
	for _, p := range profs {
		if p.Algo == plan.BHJ && p.CS < 5 {
			t.Errorf("OOM profile leaked: %+v", p)
		}
		if p.Seconds <= 0 {
			t.Errorf("non-positive time: %+v", p)
		}
	}
}

func TestTrainedModelsPredictReasonably(t *testing.T) {
	h := execsim.Hive()
	models, err := TrainedModels(h)
	if err != nil {
		t.Fatal(err)
	}
	smj, ok := models.For(plan.SMJ)
	if !ok {
		t.Fatal("no SMJ model")
	}
	bhj, ok := models.For(plan.BHJ)
	if !ok {
		t.Fatal("no BHJ model")
	}
	// The trained models should reproduce the qualitative switch behavior
	// on in-grid points: at 10 containers, BHJ beats SMJ for a small build
	// side at big containers, SMJ wins at high parallelism.
	if b, s := bhj.Cost(1, 9, 10), smj.Cost(1, 9, 10); b >= s {
		t.Errorf("trained: BHJ (%v) should beat SMJ (%v) for 1GB @ 10x9GB", b, s)
	}
	if s, b := smj.Cost(3.4, 5, 80), bhj.Cost(3.4, 5, 80); s >= b {
		t.Errorf("trained: SMJ (%v) should beat BHJ (%v) at 80 containers", s, b)
	}
	// Fit quality: model predictions within 2x of simulator on grid points.
	sim, err := h.JoinTime(plan.SMJ, 2.5, 77, plan.Resources{Containers: 20, ContainerGB: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := smj.Cost(2.5, 5, 20)
	if pred < sim/2 || pred > sim*2 {
		t.Errorf("SMJ prediction %v vs simulator %v (off by >2x)", pred, sim)
	}
}
