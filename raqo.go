// Package raqo is a from-scratch reproduction of "Query and Resource
// Optimization: Bridging the Gap" (ICDE 2018; arXiv:1906.06590): joint
// query-and-resource optimization (RAQO) for big data systems.
//
// Instead of picking a query plan first and resources later, a RAQO
// optimizer prices every candidate sub-plan at the resource configuration a
// resource planner chooses for it under the current cluster conditions, and
// emits a joint plan: a physical operator tree whose every join carries its
// own container count and container size.
//
// The package is a facade over the internal packages:
//
//	catalog   table statistics, TPC-H and random schemas, join graphs
//	plan      physical plan trees with per-operator resources
//	cost      learned cost models (paper coefficients + trainable)
//	cluster   cluster conditions, quotas, shared-cluster simulation
//	execsim   the simulated Hive/Spark execution substrate
//	optimizer Selinger and fast-randomized multi-objective planners
//	resource  brute-force / hill-climbing / cached resource planning
//	core      the RAQO optimizer and rule-based RAQO decision trees
//
// Quick start:
//
//	sch := raqo.TPCH(100)
//	q, _ := raqo.NewQuery(sch, "lineitem", "orders", "customer")
//	opt, _ := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{})
//	d, _ := opt.Optimize(q)
//	fmt.Println(d.Plan) // joint query + resource plan
package raqo

import (
	"math/rand"

	"raqo/internal/catalog"
	"raqo/internal/cluster"
	"raqo/internal/core"
	"raqo/internal/cost"
	"raqo/internal/e2e"
	"raqo/internal/execsim"
	"raqo/internal/plan"
	"raqo/internal/resource"
	"raqo/internal/scheduler"
	"raqo/internal/units"
	"raqo/internal/workload"
)

// Core planning types.
type (
	// Schema is a set of tables with statistics plus their join graph.
	Schema = catalog.Schema
	// Table describes one relation's statistics.
	Table = catalog.Table
	// Query is a logical join query over a schema.
	Query = plan.Query
	// Plan is a physical operator tree; joins carry Resources annotations.
	Plan = plan.Node
	// Resources is one operator's container count and container size.
	Resources = plan.Resources
	// JoinAlgo is a physical join implementation (SMJ or BHJ).
	JoinAlgo = plan.JoinAlgo
	// Conditions is the discrete resource space the cluster currently
	// offers.
	Conditions = cluster.Conditions
	// Optimizer is the joint resource-and-query optimizer.
	Optimizer = core.Optimizer
	// Options configures an Optimizer.
	Options = core.Options
	// Decision is a joint query/resource plan with planning metrics.
	Decision = core.Decision
	// EngineParams is a calibrated execution-simulator profile.
	EngineParams = execsim.Params
	// ExecResult is a simulated execution outcome.
	ExecResult = execsim.Result
	// Models maps join implementations to cost models.
	Models = cost.Models
	// Pricing converts reserved GB-seconds into money.
	Pricing = cost.Pricing
	// Dollars is a monetary amount.
	Dollars = units.Dollars
	// Rule picks join implementations (rule-based RAQO).
	Rule = core.Rule
	// TreeRule is a learned resource-aware decision tree rule.
	TreeRule = core.TreeRule
	// RobustDecision is the outcome of robust joint optimization across
	// several cluster-condition scenarios.
	RobustDecision = core.RobustDecision
	// Scheduler admits joint plans onto a cluster whose free capacity may
	// be below what the plan was optimized for.
	Scheduler = scheduler.Scheduler
	// SchedulerOutcome reports how a submitted job fared.
	SchedulerOutcome = scheduler.Outcome
	// WorkloadReport compares default practice with RAQO over a workload.
	WorkloadReport = e2e.WorkloadReport
)

// Join operator implementations.
const (
	SMJ = plan.SMJ // shuffle sort-merge join
	BHJ = plan.BHJ // broadcast hash join
)

// Query planner kinds.
const (
	Selinger       = core.Selinger
	FastRandomized = core.FastRandomized
)

// Robust optimization objectives.
const (
	WorstCase = core.WorstCase
	Average   = core.Average
)

// Scheduler policies for jobs whose requested resources are unavailable.
const (
	WaitPolicy       = scheduler.Wait
	DegradePolicy    = scheduler.Degrade
	ReoptimizePolicy = scheduler.Reoptimize
)

// TPCH builds the TPC-H schema at the given scale factor.
func TPCH(sf float64) *Schema { return catalog.TPCH(sf) }

// RandomSchema generates the paper's random schema with n tables.
func RandomSchema(seed int64, n int) (*Schema, error) {
	return catalog.Random(rand.New(rand.NewSource(seed)), n, catalog.DefaultRandomConfig())
}

// NewQuery validates a join query over the schema's join graph.
func NewQuery(s *Schema, relations ...string) (*Query, error) {
	return plan.NewQuery(s, relations...)
}

// TPCHQuery returns one of the paper's evaluation queries: "Q12", "Q3",
// "Q2" or "All".
func TPCHQuery(s *Schema, name string) (*Query, error) { return workload.TPCHQuery(s, name) }

// DefaultConditions returns the paper's evaluation cluster: 100 containers
// of up to 10 GB, 1-unit steps on both axes.
func DefaultConditions() Conditions { return cluster.Default() }

// NewOptimizer builds a RAQO optimizer for the given cluster conditions.
// Zero Options select Selinger planning with hill-climbing resource
// planning over the paper's published cost models.
func NewOptimizer(cond Conditions, opts Options) (*Optimizer, error) {
	return core.New(cond, opts)
}

// CachedResourcePlanner returns a hill-climbing resource planner wrapped in
// the nearest-neighbor resource-plan cache with the given data-delta
// threshold (GB); pass it in Options.Resource.
func CachedResourcePlanner(thresholdGB float64) *resource.Cache {
	return &resource.Cache{Inner: &resource.HillClimb{}, Mode: resource.NearestNeighbor, ThresholdGB: thresholdGB}
}

// PaperModels returns cost models with the coefficient vectors published in
// the paper (Section VI-A).
func PaperModels() *Models { return cost.PaperModels() }

// TrainModels profiles the given engine on the execution simulator and
// fits fresh SMJ/BHJ regression models — the paper's full pipeline.
func TrainModels(engine EngineParams) (*Models, error) { return workload.TrainedModels(engine) }

// DefaultPricing returns the serverless GB-second price used throughout.
func DefaultPricing() Pricing { return cost.DefaultPricing() }

// Hive returns the calibrated Hive-on-Tez execution profile.
func Hive() EngineParams { return execsim.Hive() }

// Spark returns the calibrated SparkSQL execution profile.
func Spark() EngineParams { return execsim.Spark() }

// Simulate executes a fully resource-annotated plan on the engine
// simulator, returning time, GB-seconds and monetary cost.
func Simulate(engine EngineParams, p *Plan, pricing Pricing) (*ExecResult, error) {
	return engine.Execute(p, pricing)
}

// SimulateUniform executes a plan with one configuration for all stages —
// how Hive and Spark run jobs today.
func SimulateUniform(engine EngineParams, p *Plan, r Resources, pricing Pricing) (*ExecResult, error) {
	return engine.ExecuteUniform(p, r, pricing)
}

// DefaultRule returns the engine's stock join-implementation rule (the
// 10 MB broadcast threshold of Figure 10).
func DefaultRule(engine string) Rule { return core.NewDefaultRule(engine) }

// TrainTreeRule learns the engine's resource-aware RAQO decision tree from
// simulated switch-point data (Figure 11).
func TrainTreeRule(engine EngineParams) (*TreeRule, error) {
	return core.TrainTreeRule(engine, core.DefaultTrainGrid())
}

// ApplyRule rewrites a plan's join implementations per the rule at the
// given per-operator resources, keeping the join order.
func ApplyRule(s *Schema, p *Plan, rule Rule, r Resources) (*Plan, error) {
	return core.ApplyRule(s, p, rule, r)
}

// LeftDeep builds a left-deep plan joining relations in the given order
// with one implementation everywhere — a convenience for examples and
// rule-based rewriting.
func LeftDeep(s *Schema, algo JoinAlgo, relations ...string) (*Plan, error) {
	return plan.LeftDeep(s, algo, relations...)
}

// DecodePlan reconstructs a plan from its JSON form against a schema,
// re-deriving all statistics (the inverse of json.Marshal on a Plan).
func DecodePlan(s *Schema, data []byte) (*Plan, error) { return plan.Decode(s, data) }

// CompareWorkload runs every TPC-H evaluation query end to end twice —
// today's two-step practice vs RAQO — on the engine simulator.
func CompareWorkload(engine EngineParams, opt *Optimizer, s *Schema, guess Resources) (*WorkloadReport, error) {
	queries, err := workload.TPCHQueries(s)
	if err != nil {
		return nil, err
	}
	return e2e.RunComparison(engine, opt, queries, guess, cost.DefaultPricing())
}
