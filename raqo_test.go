package raqo_test

import (
	"encoding/json"
	"strings"
	"testing"

	"raqo"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	schema := raqo.TPCH(100)
	q, err := raqo.NewQuery(schema, "customer", "orders", "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan == nil || d.Time <= 0 {
		t.Fatalf("decision = %+v", d)
	}
	res, err := raqo.Simulate(raqo.Hive(), d.Plan, raqo.DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Usage <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFacadeTrainedModelsFlow(t *testing.T) {
	models, err := raqo.TrainModels(raqo.Hive())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{Models: models})
	if err != nil {
		t.Fatal(err)
	}
	schema := raqo.TPCH(100)
	q, err := raqo.TPCHQuery(schema, "All")
	if err != nil {
		t.Fatal(err)
	}
	d, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Plan.Joins()); got != 7 {
		t.Errorf("joins = %d", got)
	}
}

func TestFacadeJointBeatsFixedOnSimulator(t *testing.T) {
	// End-to-end value check: the joint plan executed on the simulator
	// should not be slower than the resource-blind plan at a guessed
	// configuration.
	schema := raqo.TPCH(100)
	q, err := raqo.TPCHQuery(schema, "Q3")
	if err != nil {
		t.Fatal(err)
	}
	models, err := raqo.TrainModels(raqo.Hive())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{Models: models})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	jointRes, err := raqo.Simulate(raqo.Hive(), joint.Plan, raqo.DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	guess := raqo.Resources{Containers: 10, ContainerGB: 3}
	fixed, err := opt.OptimizeFixed(q, guess)
	if err != nil {
		t.Fatal(err)
	}
	fixedRes, err := raqo.SimulateUniform(raqo.Hive(), fixed.Plan, guess, raqo.DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	if jointRes.Seconds > fixedRes.Seconds {
		t.Errorf("joint simulated %.0fs slower than fixed %.0fs", jointRes.Seconds, fixedRes.Seconds)
	}
}

func TestFacadeRuleFlow(t *testing.T) {
	tree, err := raqo.TrainTreeRule(raqo.Hive())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Render(), "Data Size") {
		t.Error("rendered tree missing features")
	}
	schema := raqo.TPCH(100)
	base, err := raqo.LeftDeep(schema, raqo.SMJ, "lineitem", "orders", "customer")
	if err != nil {
		t.Fatal(err)
	}
	res := raqo.Resources{Containers: 10, ContainerGB: 9}
	rewritten, err := raqo.ApplyRule(schema, base, tree, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raqo.SimulateUniform(raqo.Hive(), rewritten, res, raqo.DefaultPricing()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRandomSchema(t *testing.T) {
	s, err := raqo.RandomSchema(3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 25 {
		t.Errorf("tables = %d", s.NumTables())
	}
	// Deterministic by seed.
	s2, err := raqo.RandomSchema(3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Edges()) != len(s2.Edges()) {
		t.Error("random schema not deterministic by seed")
	}
}

func TestFacadeSchedulerAndRobust(t *testing.T) {
	schema := raqo.TPCH(100)
	q, err := raqo.TPCHQuery(schema, "Q3")
	if err != nil {
		t.Fatal(err)
	}
	models, err := raqo.TrainModels(raqo.Hive())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{Models: models})
	if err != nil {
		t.Fatal(err)
	}
	d, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Explain.
	out, err := opt.Explain(d)
	if err != nil || !strings.Contains(out, "operators") {
		t.Fatalf("explain: %v\n%s", err, out)
	}
	// Scheduler: degrade onto a shrunken cluster.
	sched := &raqo.Scheduler{Engine: raqo.Hive(), Pricing: raqo.DefaultPricing(), Optimizer: opt}
	avail := raqo.Conditions{MinContainers: 1, MaxContainers: 8, ContainerStep: 1,
		MinContainerGB: 1, MaxContainerGB: 4, GBStep: 1}
	outcome, err := sched.Submit(q, d.Plan, avail, raqo.DegradePolicy)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.ExecSeconds <= 0 {
		t.Fatalf("outcome = %+v", outcome)
	}
	// Robust.
	rd, err := opt.OptimizeRobust(q, []raqo.Conditions{raqo.DefaultConditions(), avail}, raqo.WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Plan == nil {
		t.Fatal("no robust plan")
	}
}

func TestFacadeWorkloadComparisonAndJSON(t *testing.T) {
	engine := raqo.Hive()
	models, err := raqo.TrainModels(engine)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{Models: models, Engine: &engine})
	if err != nil {
		t.Fatal(err)
	}
	schema := raqo.TPCH(100)
	report, err := raqo.CompareWorkload(engine, opt, schema, raqo.Resources{Containers: 10, ContainerGB: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.RAQO) == 0 {
		t.Fatal("empty report")
	}
	// JSON round trip through the facade.
	data, err := json.Marshal(report.RAQO[0].Plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := raqo.DecodePlan(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Signature() != report.RAQO[0].Plan.Signature() {
		t.Error("facade JSON round trip changed the plan")
	}
}

func TestFacadeCachedPlanner(t *testing.T) {
	cache := raqo.CachedResourcePlanner(0.05)
	opt, err := raqo.NewOptimizer(raqo.DefaultConditions(), raqo.Options{Resource: cache})
	if err != nil {
		t.Fatal(err)
	}
	schema := raqo.TPCH(100)
	q, err := raqo.TPCHQuery(schema, "All")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() == 0 {
		t.Error("cache never hit")
	}
}
