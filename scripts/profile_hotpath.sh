#!/bin/sh
# Capture CPU and allocation profiles of the serving hot path: start
# `raqo serve` with its dedicated -pprof listener, drive a seeded storm
# of /v1/optimize and /v1/submit requests while the CPU profile records,
# then fetch the allocation profile. Profiles land in profiles/ as
# cpu_hotpath.pb.gz and allocs_hotpath.pb.gz, ready for `go tool pprof`.
#
#   PROFILE_SECONDS=10 sh scripts/profile_hotpath.sh
#
# Exits non-zero on any failure.
set -eu

GO=${GO:-go}
SECONDS_CPU=${PROFILE_SECONDS:-10}
outdir=${PROFILE_DIR:-profiles}
tmp=$(mktemp -d)
out="$tmp/serve.out"
pid=""
stormpid=""
trap 'if [ -n "${stormpid:-}" ]; then kill "$stormpid" 2>/dev/null || true; fi; if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

"$tmp/raqo" serve -addr 127.0.0.1:0 -pprof 127.0.0.1:0 >"$out" 2>&1 &
pid=$!

addr=""
pprof=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$out")
    pprof=$(sed -n 's/^raqo serve: pprof on \([^ ]*\).*/\1/p' "$out")
    [ -n "$addr" ] && [ -n "$pprof" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "profile-hotpath: server died at startup:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] && [ -n "$pprof" ] || { echo "profile-hotpath: server never reported its addresses:"; cat "$out"; exit 1; }

# Warm the caches so the profile shows steady state, not first-request
# model training and cache fills.
for q in Q12 Q3 Q2 All; do
    curl -fsS -o /dev/null -X POST "http://$addr/v1/optimize" -d "{\"query\":\"$q\"}"
done

# The submit storm: a deterministic round-robin over queries and
# policies, looping until the CPU profile window closes. Every request
# exercises planning (optimize) or arbitration + incremental
# re-optimization (submit).
storm() {
    i=0
    while :; do
        case $((i % 4)) in
            0) q=Q12 ;;
            1) q=Q3 ;;
            2) q=Q2 ;;
            3) q=All ;;
        esac
        case $((i % 3)) in
            0) curl -fsS -o /dev/null -X POST "http://$addr/v1/optimize" -d "{\"query\":\"$q\"}" || return 0 ;;
            1) curl -fsS -o /dev/null -X POST "http://$addr/v1/submit" -d "{\"query\":\"$q\"}" || return 0 ;;
            2) curl -fsS -o /dev/null -X POST "http://$addr/v1/submit" -d "{\"query\":\"$q\",\"policy\":\"wait\"}" || return 0 ;;
        esac
        i=$((i + 1))
    done
}
storm &
stormpid=$!

mkdir -p "$outdir"
echo "profile-hotpath: recording ${SECONDS_CPU}s CPU profile under load ($addr)..."
curl -fsS -o "$outdir/cpu_hotpath.pb.gz" "http://$pprof/debug/pprof/profile?seconds=$SECONDS_CPU"
curl -fsS -o "$outdir/allocs_hotpath.pb.gz" "http://$pprof/debug/pprof/allocs"

kill "$stormpid" 2>/dev/null || true
wait "$stormpid" 2>/dev/null || true
stormpid=""

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "profile-hotpath: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done
pid=""

for f in cpu_hotpath.pb.gz allocs_hotpath.pb.gz; do
    [ -s "$outdir/$f" ] || { echo "profile-hotpath: $outdir/$f is empty"; exit 1; }
done
echo "profile-hotpath: wrote $outdir/cpu_hotpath.pb.gz and $outdir/allocs_hotpath.pb.gz"
echo "profile-hotpath: inspect with: $GO tool pprof $outdir/cpu_hotpath.pb.gz"
