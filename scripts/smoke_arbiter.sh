#!/bin/sh
# Smoke test for the workload arbiter's HTTP face: start `raqo serve`
# (trained models, default single tenant), submit queries through
# POST /v1/submit under the reoptimize and wait policies, verify the
# virtual cluster's occupancy via GET /v1/arbiter/stats, drain it with
# ?drain=1, check the arbiter metric families on /metrics, then shut
# down. Exits non-zero on any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
out="$tmp/serve.out"
pid=""
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

"$tmp/raqo" serve -addr 127.0.0.1:0 >"$out" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke-arbiter: server died at startup:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "smoke-arbiter: server never reported its address:"; cat "$out"; exit 1; }

# An idle virtual cluster: nothing admitted, the full pool free.
st=$(curl -fsS "http://$addr/v1/arbiter/stats")
echo "$st" | grep -q '"freeContainers": 100' || { echo "smoke-arbiter: pool should start idle: $st"; exit 1; }

# Submit under the default policy (adaptive reoptimize): the outcome must
# carry a plausible virtual execution and a held gang.
sub=$(curl -fsS -X POST "http://$addr/v1/submit" -d '{"query":"Q12"}')
echo "$sub" | grep -q '"policy": "reoptimize"' || { echo "smoke-arbiter: bad submit response: $sub"; exit 1; }
echo "$sub" | grep -q '"execSeconds": 0,' && { echo "smoke-arbiter: zero execution time: $sub"; exit 1; }

# A second submission under wait contends with the first gang.
sub2=$(curl -fsS -X POST "http://$addr/v1/submit" -d '{"query":"Q3","policy":"wait"}')
echo "$sub2" | grep -q '"policy": "wait"' || { echo "smoke-arbiter: bad wait submit: $sub2"; exit 1; }

# Validation failures are 400s, not arbitration errors.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/submit" -d '{"query":"Q99"}')
[ "$code" = "400" ] || { echo "smoke-arbiter: unknown query returned $code, want 400"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/submit" -d '{"query":"Q12","policy":"sometimes"}')
[ "$code" = "400" ] || { echo "smoke-arbiter: unknown policy returned $code, want 400"; exit 1; }

# The arbiter metric families ride the shared Prometheus exposition.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q 'raqo_arbiter_admissions_total{policy="reoptimize"}' \
    || { echo "smoke-arbiter: missing admissions metric"; exit 1; }
echo "$metrics" | grep -q 'raqo_arbiter_pool_containers_in_use' \
    || { echo "smoke-arbiter: missing occupancy metric"; exit 1; }

# Drain the virtual cluster: both gangs release, the pool returns to idle.
st=$(curl -fsS "http://$addr/v1/arbiter/stats?drain=1")
echo "$st" | grep -q '"completed": 2' || { echo "smoke-arbiter: drain should complete both queries: $st"; exit 1; }
echo "$st" | grep -q '"inFlight": 0' || { echo "smoke-arbiter: drain left work in flight: $st"; exit 1; }
echo "$st" | grep -q '"freeContainers": 100' || { echo "smoke-arbiter: drained pool not idle: $st"; exit 1; }

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke-arbiter: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done
pid=""

echo "smoke-arbiter: workload arbitration OK ($addr)"
