#!/bin/sh
# Smoke test for the cloud arbiter's HTTP face: start `raqo serve` with a
# seeded priced pool and the autoscaler on, submit a query through
# POST /v1/cloud/submit (it must land on the discounted spot tier), fire
# a spot-interruption storm via POST /v1/cloud/preempt, verify the query
# recovers with nothing lost via GET /v1/cloud/stats?drain=1, check the
# cloud metric families on /metrics, then shut down. Exits non-zero on
# any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
out="$tmp/serve.out"
pid=""
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

"$tmp/raqo" serve -addr 127.0.0.1:0 -cloud-seed 7 -cloud-autoscale >"$out" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke-cloud: server died at startup:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "smoke-cloud: server never reported its address:"; cat "$out"; exit 1; }

# An idle priced pool: the default two-tier market, nothing admitted.
st=$(curl -fsS "http://$addr/v1/cloud/stats")
echo "$st" | grep -q '"capacity_containers": 36' || { echo "smoke-cloud: pool should start at 12+24: $st"; exit 1; }
echo "$st" | grep -q '"in_flight": 0' || { echo "smoke-cloud: pool should start idle: $st"; exit 1; }

# Submit under the default recovery (reoptimize): an idle pool admits on
# the cheapest $/GB class, which is the discounted spot tier.
sub=$(curl -fsS -X POST "http://$addr/v1/cloud/submit" -d '{"query":"Q12"}')
echo "$sub" | grep -q '"recovery": "reoptimize"' || { echo "smoke-cloud: bad submit response: $sub"; exit 1; }
echo "$sub" | grep -q '"tier": "spot"' || { echo "smoke-cloud: idle pool should admit on spot: $sub"; exit 1; }
echo "$sub" | grep -q '"execSeconds": 0,' && { echo "smoke-cloud: zero execution time: $sub"; exit 1; }

# Validation failures are 400s, not arbitration errors.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/cloud/submit" -d '{"query":"Q99"}')
[ "$code" = "400" ] || { echo "smoke-cloud: unknown query returned $code, want 400"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/cloud/submit" -d '{"query":"Q12","recovery":"sometimes"}')
[ "$code" = "400" ] || { echo "smoke-cloud: unknown recovery returned $code, want 400"; exit 1; }

# A spot-interruption storm revokes the running gang; the recovery policy
# requeues it, nothing is lost.
storm=$(curl -fsS -X POST "http://$addr/v1/cloud/preempt" -d '{"fraction":1}')
echo "$storm" | grep -q '"revoked": 1' || { echo "smoke-cloud: storm should revoke the running gang: $storm"; exit 1; }
echo "$storm" | grep -q '"lost": 0' || { echo "smoke-cloud: storm lost a query: $storm"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/cloud/preempt" -d '{"fraction":2}')
[ "$code" = "400" ] || { echo "smoke-cloud: bad fraction returned $code, want 400"; exit 1; }

# The cloud metric families ride the shared Prometheus exposition.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q 'raqo_cloud_admissions_total{tier="spot"}' \
    || { echo "smoke-cloud: missing admissions metric"; exit 1; }
echo "$metrics" | grep -q 'raqo_cloud_preemptions_total' \
    || { echo "smoke-cloud: missing preemptions metric"; exit 1; }
echo "$metrics" | grep -q 'raqo_cloud_capacity_containers' \
    || { echo "smoke-cloud: missing capacity metric"; exit 1; }

# Drain the pool: the revoked query recovers and finishes, spend accrued.
st=$(curl -fsS "http://$addr/v1/cloud/stats?drain=1")
echo "$st" | grep -q '"completed": 1' || { echo "smoke-cloud: drain should complete the query: $st"; exit 1; }
echo "$st" | grep -q '"preemptions": 1' || { echo "smoke-cloud: drain should count the storm revocation: $st"; exit 1; }
echo "$st" | grep -q '"lost": 0' || { echo "smoke-cloud: drain lost a query: $st"; exit 1; }
echo "$st" | grep -q '"spend_usd": 0,' && { echo "smoke-cloud: no spend accrued: $st"; exit 1; }

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke-cloud: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done
pid=""

echo "smoke-cloud: cloud economics OK ($addr)"
