#!/bin/sh
# Smoke test for the execution-feedback loop: start `raqo serve` with a
# fast recalibration interval and a journal, stream a batch of drifting
# observations to /v1/feedback, wait for /v1/model to report the retrained
# version, drain the server, then replay the journal offline with
# `raqo calibrate`. Exits non-zero on any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
out="$tmp/serve.out"
journal="$tmp/journal.jsonl"
# pid is set only after the server forks; guard the expansion so the trap
# stays safe under `set -u` when the build fails before the fork.
pid=""
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

"$tmp/raqo" serve -addr 127.0.0.1:0 -trained=false \
    -journal "$journal" -drift-min-samples 4 -recal-interval 200ms \
    >"$out" 2>&1 &
pid=$!

# The ready line prints the bound address: "raqo serve: listening on HOST:PORT ...".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke-feedback: server died at startup:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "smoke-feedback: server never reported its address:"; cat "$out"; exit 1; }

model=$(curl -fsS "http://$addr/v1/model")
echo "$model" | grep -q '"version": 1' || { echo "smoke-feedback: seed model should be version 1: $model"; exit 1; }

# Stream 24 observations that all run 4x slower than predicted, with
# varied operator features so the retrain has a full-rank design matrix.
obs=""
i=0
while [ "$i" -lt 24 ]; do
    i=$((i + 1))
    ss=$i
    cs=$((i % 5 + 2))
    nc=$((i % 7 + 4))
    pred=$((i * 10))
    o="{\"signature\":\"smoke-$i\",\"engine\":\"hive\",\"predictedSeconds\":$pred,\"observedSeconds\":$((pred * 4)),\"operators\":[{\"algo\":\"SMJ\",\"ssGB\":$ss,\"csGB\":$cs,\"nc\":$nc,\"predictedSeconds\":$pred,\"observedSeconds\":$((pred * 4))}]}"
    obs="$obs${obs:+,}$o"
done
fb=$(curl -fsS -X POST "http://$addr/v1/feedback" -d "{\"observations\":[$obs]}")
echo "$fb" | grep -q '"accepted": 24' || { echo "smoke-feedback: bad feedback response: $fb"; exit 1; }
echo "$fb" | grep -q '"drifted": true' || { echo "smoke-feedback: drift should fire on 4x-off feedback: $fb"; exit 1; }

# The background loop (200ms interval) must notice the drift, retrain and
# swap the model: version advances past the seed and the resource-plan
# cache generation is bumped.
version=""
for _ in $(seq 1 100); do
    model=$(curl -fsS "http://$addr/v1/model")
    version=$(echo "$model" | sed -n 's/^ *"version": \([0-9]*\).*/\1/p')
    [ -n "$version" ] && [ "$version" -ge 2 ] && break
    sleep 0.1
done
[ -n "$version" ] && [ "$version" -ge 2 ] || { echo "smoke-feedback: model never recalibrated: $model"; exit 1; }
echo "$model" | grep -q '"fb' || { echo "smoke-feedback: no recalibrated model name: $model"; exit 1; }
echo "$model" | grep -q '"cacheGeneration": 0' && { echo "smoke-feedback: cache generation never advanced: $model"; exit 1; }

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke-feedback: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done
pid=""

# The drained server flushed every accepted observation to the journal;
# the offline replay must reach the same retrained version.
cal=$("$tmp/raqo" calibrate -journal "$journal" -trained=false)
echo "$cal" | grep -q '24 observations' || { echo "smoke-feedback: journal incomplete:"; echo "$cal"; exit 1; }
echo "$cal" | grep -q 'version 2' || { echo "smoke-feedback: offline replay did not retrain:"; echo "$cal"; exit 1; }
echo "$cal" | grep -q 'mean abs rel error' || { echo "smoke-feedback: calibrate missing error summary:"; echo "$cal"; exit 1; }

echo "smoke-feedback: adaptivity OK ($addr, version $version)"
