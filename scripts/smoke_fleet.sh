#!/bin/sh
# Smoke test for the optimizer fleet: build the CLI, start three `raqo
# serve` processes wired together with -peers/-node-id, then check the
# fleet contracts end to end — deterministic cross-node routing, model
# convergence after a recalibration on the journal-owning shard, degraded
# answers while a member is hard-killed, and a graceful drain. Exits
# non-zero on any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

# Three fixed localhost ports derived from the PID; if one is taken the
# whole trio is restarted a few slots up (membership must be agreed before
# any node starts, so ephemeral :0 ports cannot be used here).
base=$((20000 + $$ % 20000))
attempt=0
a1=""; a2=""; a3=""
while [ "$attempt" -lt 5 ]; do
    attempt=$((attempt + 1))
    p1=$base; p2=$((base + 1)); p3=$((base + 2))
    a1="127.0.0.1:$p1"; a2="127.0.0.1:$p2"; a3="127.0.0.1:$p3"
    pids=""
    i=0
    for a in "$a1" "$a2" "$a3"; do
        i=$((i + 1))
        peers=$(printf '%s,%s,%s' "$a1" "$a2" "$a3" | sed "s/$a//;s/,,/,/;s/^,//;s/,\$//")
        "$tmp/raqo" serve -addr "$a" -node-id "$a" -peers "$peers" \
            -trained=false -drift-min-samples 4 -recal-interval 200ms \
            -journal "$tmp/journal$i.jsonl" >"$tmp/node$i.log" 2>&1 &
        pids="$pids $!"
    done
    ok=1
    for n in 1 2 3; do
        ready=""
        for _ in $(seq 1 100); do
            grep -q '^raqo serve: listening on ' "$tmp/node$n.log" && { ready=1; break; }
            sleep 0.1
        done
        [ -n "$ready" ] || { ok=""; break; }
    done
    [ -n "$ok" ] && break
    # A node failed to come up (port collision): kill the trio and retry.
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    pids=""
    base=$((base + 7))
done
[ -n "$pids" ] || { echo "smoke-fleet: fleet never became ready"; cat "$tmp"/node*.log; exit 1; }

for a in "$a1" "$a2" "$a3"; do
    health=$(curl -fsS "http://$a/healthz")
    echo "$health" | grep -q '"status": "ok"' || { echo "smoke-fleet: bad healthz from $a: $health"; exit 1; }
done

# Deterministic routing: the same query entering at different nodes must be
# answered by the same owner, and every answer must carry a plan.
for q in Q12 Q3 Q2 All; do
    owner=""
    for a in "$a1" "$a2"; do
        body=$(curl -fsS -D "$tmp/hdr" -X POST "http://$a/v1/optimize" -d "{\"query\":\"$q\"}")
        echo "$body" | grep -q '"plan": {' || { echo "smoke-fleet: $q via $a missing plan: $body"; exit 1; }
        served=$(tr -d '\r' <"$tmp/hdr" | sed -n 's/^[Xx]-[Rr]aqo-[Ff]leet-[Nn]ode: //p')
        [ -n "$served" ] || { echo "smoke-fleet: $q via $a missing served-by header"; exit 1; }
        if [ -z "$owner" ]; then owner=$served
        elif [ "$owner" != "$served" ]; then
            echo "smoke-fleet: $q routed to $owner via $a1 but $served via $a2"; exit 1
        fi
    done
done

# Stream drifting feedback into node 1; the fleet routes it to whichever
# shard owns the feedback journal, that node recalibrates (200ms loop) and
# publishes, and *every* node must converge on the new version. /v1/model
# is deliberately unrouted — it reports each node's local version.
obs=""
i=0
while [ "$i" -lt 24 ]; do
    i=$((i + 1))
    ss=$i
    cs=$((i % 5 + 2))
    nc=$((i % 7 + 4))
    pred=$((i * 10))
    o="{\"signature\":\"smoke-$i\",\"engine\":\"hive\",\"predictedSeconds\":$pred,\"observedSeconds\":$((pred * 4)),\"operators\":[{\"algo\":\"SMJ\",\"ssGB\":$ss,\"csGB\":$cs,\"nc\":$nc,\"predictedSeconds\":$pred,\"observedSeconds\":$((pred * 4))}]}"
    obs="$obs${obs:+,}$o"
done
fb=$(curl -fsS -X POST "http://$a1/v1/feedback" -d "{\"observations\":[$obs]}")
echo "$fb" | grep -q '"accepted": 24' || { echo "smoke-fleet: bad feedback response: $fb"; exit 1; }

for a in "$a1" "$a2" "$a3"; do
    version=""
    for _ in $(seq 1 100); do
        model=$(curl -fsS "http://$a/v1/model")
        version=$(echo "$model" | sed -n 's/^ *"version": \([0-9]*\).*/\1/p')
        [ -n "$version" ] && [ "$version" -ge 2 ] && break
        sleep 0.1
    done
    [ -n "$version" ] && [ "$version" -ge 2 ] || {
        echo "smoke-fleet: node $a never converged past the seed model: $model"
        cat "$tmp"/node*.log; exit 1; }
done

# The fleet telemetry families are on every node's /metrics.
metrics=$(curl -fsS "http://$a1/metrics")
for fam in raqo_fleet_forwards_total raqo_fleet_ring_nodes raqo_fleet_peers_healthy raqo_fleet_model_installs_total; do
    echo "$metrics" | grep -q "$fam" || { echo "smoke-fleet: /metrics missing $fam"; exit 1; }
done
echo "$metrics" | grep -q '^raqo_fleet_ring_nodes 3' || { echo "smoke-fleet: ring should have 3 nodes"; exit 1; }

# Hard-kill node 3 (a crash, not a drain): every query must still be
# answered through node 1 — the owner's shard degrades to local planning,
# never to an error.
p3=$(echo "$pids" | awk '{print $3}')
kill -9 "$p3"
for q in Q12 Q3 Q2 All; do
    body=$(curl -fsS -X POST "http://$a1/v1/optimize" -d "{\"query\":\"$q\"}") \
        || { echo "smoke-fleet: $q failed with a member down"; exit 1; }
    echo "$body" | grep -q '"plan": {' || { echo "smoke-fleet: degraded $q missing plan: $body"; exit 1; }
done

# Drain the survivors gracefully.
p1=$(echo "$pids" | awk '{print $1}')
p2=$(echo "$pids" | awk '{print $2}')
kill -TERM "$p1" "$p2"
for p in "$p1" "$p2"; do
    i=0
    while kill -0 "$p" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "smoke-fleet: node did not drain after SIGTERM"; exit 1; }
        sleep 0.1
    done
done
pids=""

echo "smoke-fleet: fleet OK ($a1 $a2 $a3)"
