#!/bin/sh
# Crash-safety smoke test for the embedded history store: start
# `raqo serve` with -history-dir, ingest feedback observations (each
# acknowledged POST is committed to the store before the 200), kill the
# server with SIGKILL — no drain, no flush — restart on the same
# directory, and verify every acknowledged point survived recovery and
# still answers range queries correctly. Exits non-zero on any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
out="$tmp/serve.out"
hist="$tmp/history"
# pid is set only after the server forks; guard the expansion so the trap
# stays safe under `set -u` when the build fails before the fork.
pid=""
trap 'if [ -n "${pid:-}" ]; then kill -9 "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

# start_server OUT_FILE: fork `raqo serve` on the shared history dir with
# a fast gather tick, wait for the ready line and set $pid/$addr.
start_server() {
    "$tmp/raqo" serve -addr 127.0.0.1:0 -trained=false \
        -history-dir "$hist" -history-interval 100ms \
        >"$1" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "smoke-history: server died at startup:"; cat "$1"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "smoke-history: server never reported its address:"; cat "$1"; exit 1; }
}

start_server "$out"

# Three observations, one per minute, each predicted 10s but observed 40s
# (relative error |10-40|/40 = 0.75). Explicit observedAt pins each to its bucket.
now=$(date +%s)
t0=$((now - 120))
obs=""
i=0
while [ "$i" -lt 3 ]; do
    o="{\"signature\":\"smoke-$i\",\"engine\":\"hive\",\"predictedSeconds\":10,\"observedSeconds\":40,\"observedAt\":$((t0 + i * 60))}"
    obs="$obs${obs:+,}$o"
    i=$((i + 1))
done
fb=$(curl -fsS -X POST "http://$addr/v1/feedback" -d "{\"observations\":[$obs]}")
echo "$fb" | grep -q '"accepted": 3' || { echo "smoke-history: bad feedback response: $fb"; exit 1; }

# The acknowledged points are already durable and queryable: the error
# series shows three one-point buckets with mean 0.75.
q="http://$addr/v1/history?series=feedback.relerr.hive.query&from=$t0&to=$((now + 1))&step=60"
resp=$(curl -fsS "$q")
count=$(echo "$resp" | grep -c '"count": 1') || true
[ "$count" -eq 3 ] || { echo "smoke-history: want 3 one-point buckets, got $count: $resp"; exit 1; }
means=$(echo "$resp" | grep -c '"mean": 0.75') || true
[ "$means" -eq 3 ] || { echo "smoke-history: want mean 0.75 in every bucket: $resp"; exit 1; }

# The gather loop (100ms tick) samples the server's own telemetry into
# the same store; wait until the self-metrics series shows up.
seen=""
for _ in $(seq 1 100); do
    list=$(curl -fsS "http://$addr/v1/history")
    if echo "$list" | grep -q 'raqo_history_points_total'; then seen=1; break; fi
    sleep 0.1
done
[ -n "$seen" ] || { echo "smoke-history: gather loop never recorded telemetry: $list"; exit 1; }

# Crash: SIGKILL, mid-gather with high probability — no drain, no Close,
# the active segment is cut wherever the last block write ended.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Restart on the same directory. Recovery truncates any torn tail and
# rebuilds the rollups; every acknowledged point must still be there.
start_server "$tmp/serve2.out"

resp2=$(curl -fsS "http://$addr/v1/history?series=feedback.relerr.hive.query&from=$t0&to=$((now + 1))&step=60")
count2=$(echo "$resp2" | grep -c '"count": 1') || true
[ "$count2" -eq 3 ] || { echo "smoke-history: feedback points lost in crash: $resp2"; exit 1; }
means2=$(echo "$resp2" | grep -c '"mean": 0.75') || true
[ "$means2" -eq 3 ] || { echo "smoke-history: aggregates corrupted by recovery: $resp2"; exit 1; }
list2=$(curl -fsS "http://$addr/v1/history")
echo "$list2" | grep -q 'raqo_history_points_total' || { echo "smoke-history: gathered telemetry lost in crash: $list2"; exit 1; }

# The recovered store keeps ingesting: one more observation lands in a
# fourth bucket.
fb2=$(curl -fsS -X POST "http://$addr/v1/feedback" \
    -d "{\"observations\":[{\"signature\":\"smoke-post\",\"engine\":\"hive\",\"predictedSeconds\":10,\"observedSeconds\":40,\"observedAt\":$((t0 + 180))}]}")
echo "$fb2" | grep -q '"accepted": 1' || { echo "smoke-history: restarted server rejected feedback: $fb2"; exit 1; }
resp3=$(curl -fsS "http://$addr/v1/history?series=feedback.relerr.hive.query&from=$t0&to=$((t0 + 240))&step=60")
count3=$(echo "$resp3" | grep -c '"count": 1') || true
[ "$count3" -eq 4 ] || { echo "smoke-history: post-recovery ingest broken, want 4 buckets: $resp3"; exit 1; }

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke-history: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done
pid=""

echo "smoke-history: crash recovery OK ($addr, $count2 buckets survived kill -9)"
