#!/bin/sh
# Smoke test for `raqo serve`: build the CLI, start the service on an
# ephemeral port, hit /healthz and one /v1/optimize, then terminate and
# check the graceful drain. Exits non-zero on any failure.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
out="$tmp/serve.out"
# pid is set only after the server forks; guard the expansion so the trap
# stays safe under `set -u` when the build fails before the fork.
pid=""
trap 'if [ -n "${pid:-}" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT INT TERM

"$GO" build -o "$tmp/raqo" ./cmd/raqo

"$tmp/raqo" serve -addr 127.0.0.1:0 -trained=false >"$out" 2>&1 &
pid=$!

# The ready line prints the bound address: "raqo serve: listening on HOST:PORT ...".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^raqo serve: listening on \([^ ]*\).*/\1/p' "$out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke: server died at startup:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "smoke: server never reported its address:"; cat "$out"; exit 1; }

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"status": "ok"' || { echo "smoke: bad healthz: $health"; exit 1; }

opt=$(curl -fsS -X POST "http://$addr/v1/optimize" -d '{"query":"Q12"}')
echo "$opt" | grep -q '"query": "Q12"' || { echo "smoke: bad optimize response: $opt"; exit 1; }
echo "$opt" | grep -q '"plan": {' || { echo "smoke: optimize response missing plan: $opt"; exit 1; }

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke: server did not drain after SIGTERM"; exit 1; }
    sleep 0.1
done

echo "smoke: serve OK ($addr)"
